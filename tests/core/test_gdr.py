"""End-to-end tests for :mod:`repro.core.gdr` (the engine)."""

import pytest

from repro.core import GDRConfig, GDREngine, GroundTruthOracle
from repro.errors import ConfigError


class TestConfig:
    def test_defaults(self):
        config = GDRConfig()
        assert config.ranking == "voi"
        assert config.learning == "active"
        assert config.grouping

    def test_presets(self):
        assert GDRConfig.gdr().learning == "active"
        assert GDRConfig.s_learning().learning == "passive"
        assert not GDRConfig.active_learning().grouping
        assert GDRConfig.no_learning().learning == "none"

    def test_preset_overrides(self):
        config = GDRConfig.gdr(seed=42, batch_size=5)
        assert config.seed == 42
        assert config.batch_size == 5

    @pytest.mark.parametrize("kwargs", [{"ranking": "bogus"}, {"learning": "bogus"}])
    def test_invalid_values(self, kwargs):
        with pytest.raises(ConfigError):
            GDRConfig(**kwargs)


class TestFullRepair:
    def test_no_learning_reaches_clean_instance(
        self, figure1_dirty, figure1_clean, figure1_rules
    ):
        engine = GDREngine(
            figure1_dirty,
            figure1_rules,
            GroundTruthOracle(figure1_clean),
            config=GDRConfig.no_learning(),
            clean_db=figure1_clean,
        )
        result = engine.run()
        assert result.remaining_dirty == 0
        assert figure1_dirty.equals_data(figure1_clean)
        assert result.improvement == pytest.approx(100.0)
        assert result.final_loss == 0.0

    def test_trajectory_is_recorded(self, figure1_dirty, figure1_clean, figure1_rules):
        engine = GDREngine(
            figure1_dirty,
            figure1_rules,
            GroundTruthOracle(figure1_clean),
            config=GDRConfig.no_learning(),
            clean_db=figure1_clean,
        )
        result = engine.run()
        assert result.trajectory[0].feedback == 0
        assert result.trajectory[0].loss == result.initial_loss
        feedbacks = [p.feedback for p in result.trajectory]
        assert feedbacks == sorted(feedbacks)
        assert result.trajectory[-1].loss == result.final_loss

    def test_report_present_with_ground_truth(
        self, figure1_dirty, figure1_clean, figure1_rules
    ):
        engine = GDREngine(
            figure1_dirty,
            figure1_rules,
            GroundTruthOracle(figure1_clean),
            config=GDRConfig.no_learning(),
            clean_db=figure1_clean,
        )
        result = engine.run()
        assert result.report is not None
        assert result.report.precision == 1.0
        assert result.report.recall == 1.0

    def test_without_ground_truth_uses_proxy_loss(
        self, figure1_dirty, figure1_clean, figure1_rules
    ):
        engine = GDREngine(
            figure1_dirty,
            figure1_rules,
            GroundTruthOracle(figure1_clean),
            config=GDRConfig.no_learning(),
        )
        result = engine.run()
        assert result.report is None
        assert result.initial_loss > 0
        assert result.final_loss == 0.0


class TestBudgets:
    def test_zero_budget_changes_nothing_without_learner(
        self, figure1_dirty, figure1_clean, figure1_rules
    ):
        snapshot = figure1_dirty.snapshot()
        engine = GDREngine(
            figure1_dirty,
            figure1_rules,
            GroundTruthOracle(figure1_clean),
            config=GDRConfig.no_learning(),
            clean_db=figure1_clean,
        )
        result = engine.run(feedback_limit=0)
        assert result.feedback_used == 0
        assert figure1_dirty.equals_data(snapshot)

    def test_budget_respected(self, figure1_dirty, figure1_clean, figure1_rules):
        engine = GDREngine(
            figure1_dirty,
            figure1_rules,
            GroundTruthOracle(figure1_clean),
            config=GDRConfig.no_learning(),
            clean_db=figure1_clean,
        )
        result = engine.run(feedback_limit=3)
        assert result.feedback_used <= 3

    def test_more_budget_never_hurts_no_learning(
        self, figure1_schema, figure1_clean, figure1_rules
    ):
        from repro.db import Database
        from tests.conftest import make_figure1_dirty_rows

        improvements = []
        for limit in (1, 4, 50):
            dirty = Database(figure1_schema, make_figure1_dirty_rows())
            engine = GDREngine(
                dirty,
                figure1_rules,
                GroundTruthOracle(figure1_clean),
                config=GDRConfig.no_learning(),
                clean_db=figure1_clean,
            )
            improvements.append(engine.run(feedback_limit=limit).improvement)
        assert improvements == sorted(improvements)


class TestVariants:
    @pytest.mark.parametrize(
        "config_factory",
        [GDRConfig.gdr, GDRConfig.s_learning, GDRConfig.active_learning, GDRConfig.no_learning],
    )
    def test_every_variant_runs_and_improves(
        self, config_factory, figure1_dirty, figure1_clean, figure1_rules
    ):
        engine = GDREngine(
            figure1_dirty,
            figure1_rules,
            GroundTruthOracle(figure1_clean),
            config=config_factory(min_examples=4),
            clean_db=figure1_clean,
        )
        result = engine.run()
        assert result.improvement > 0
        assert result.feedback_used > 0

    def test_greedy_and_random_rankings_run(
        self, figure1_dirty, figure1_clean, figure1_rules
    ):
        for ranking in ("greedy", "random"):
            from tests.conftest import make_figure1_dirty_rows

            from repro.db import Database

            dirty = Database(figure1_dirty.schema, make_figure1_dirty_rows())
            engine = GDREngine(
                dirty,
                figure1_rules,
                GroundTruthOracle(figure1_clean),
                config=GDRConfig(ranking=ranking, learning="none", use_benefit_quota=False),
                clean_db=figure1_clean,
            )
            assert engine.run().improvement == pytest.approx(100.0)


class TestDatasetsEndToEnd:
    def test_hospital_full_run(self, hospital_dataset):
        dirty = hospital_dataset.fresh_dirty()
        engine = GDREngine(
            dirty,
            hospital_dataset.rules,
            GroundTruthOracle(hospital_dataset.clean),
            config=GDRConfig.gdr(seed=1),
            clean_db=hospital_dataset.clean,
        )
        result = engine.run()
        assert result.improvement > 70
        assert result.report.precision > 0.8

    def test_adult_budgeted_run(self, adult_dataset):
        dirty = adult_dataset.fresh_dirty()
        engine = GDREngine(
            dirty,
            adult_dataset.rules,
            GroundTruthOracle(adult_dataset.clean),
            config=GDRConfig.gdr(seed=1),
            clean_db=adult_dataset.clean,
        )
        result = engine.run(feedback_limit=engine.initial_dirty // 2)
        assert result.feedback_used <= engine.initial_dirty // 2
        assert result.improvement > 0
