"""Parity tests for the cached VOI ranking (:class:`GroupBenefitCache`).

The acceptance property of the delta pipeline: at any point in an
interactive scenario, the cache must reproduce the rebuild-from-scratch
ranking — same groups, same order, byte-identical benefits.
"""

import random

import pytest

from repro.constraints import ViolationDetector
from repro.core import GroupBenefitCache, GroupIndex, VOIEstimator, group_updates
from repro.datasets import load_dataset
from repro.repair import (
    ConsistencyManager,
    Feedback,
    RepairState,
    UpdateGenerator,
    UserFeedback,
)


@pytest.fixture()
def substrate():
    ds = load_dataset("hospital", n=120, seed=5)
    db = ds.fresh_dirty()
    detector = ViolationDetector(db, ds.rules)
    state = RepairState()
    index = GroupIndex(state)
    generator = UpdateGenerator(db, ds.rules, detector, state)
    manager = ConsistencyManager(db, ds.rules, detector, state, generator)
    estimator = VOIEstimator(detector)
    generator.generate_all()
    return ds, db, detector, state, index, generator, manager, estimator


def _score_probability(update):
    """p̃ = the update score (the engine's cold-start prior)."""
    return update.score


class TestCacheParity:
    def test_initial_ranking_matches_rebuild(self, substrate):
        __, db, detector, state, index, __, __, estimator = substrate
        cache = GroupBenefitCache(estimator, index, detector, db)
        cached = cache.rank_all(_score_probability)
        reference = estimator.rank_groups(group_updates(state.updates()), _score_probability)
        assert [(g.key, b) for g, b in cached] == [(g.key, b) for g, b in reference]
        top = cache.top(_score_probability)
        assert top is not None
        assert top[0].key == reference[0][0].key
        assert top[1] == reference[0][1]

    def test_parity_through_interactive_scenario(self, substrate):
        ds, db, detector, state, index, __, manager, estimator = substrate
        cache = GroupBenefitCache(estimator, index, detector, db)
        rng = random.Random(42)
        rounds = 0
        while rounds < 25 and len(state):
            updates = state.updates()
            update = updates[rng.randrange(len(updates))]
            clean_value = ds.clean.value(update.tid, update.attribute)
            roll = rng.random()
            if roll < 0.5:
                feedback = UserFeedback(Feedback.CONFIRM)
            elif roll < 0.75:
                feedback = UserFeedback(Feedback.REJECT, correction=clean_value)
            elif roll < 0.9:
                feedback = UserFeedback(Feedback.REJECT)
            else:
                feedback = UserFeedback(Feedback.RETAIN)
            manager.apply_feedback(update, feedback)
            manager.refresh_suggestions()
            assert index.verify()
            cached = cache.rank_all(_score_probability)
            reference = estimator.rank_groups(
                group_updates(state.updates()), _score_probability
            )
            assert [(g.key, b) for g, b in cached] == [
                (g.key, b) for g, b in reference
            ], f"diverged at round {rounds}"
            if reference:
                top = cache.top(_score_probability)
                assert top[0].key == reference[0][0].key
                assert top[1] == reference[0][1]
            rounds += 1
        assert rounds > 5  # the scenario actually exercised the cache

    def test_row_dependent_probability_invalidates_on_write(self, substrate):
        __, db, detector, state, index, __, manager, estimator = substrate
        cache = GroupBenefitCache(estimator, index, detector, db)

        def row_probability(update):
            # depends on the tuple's current zip value: exercises the
            # written-row staleness path
            zip_value = str(db.value(update.tid, "zip"))
            return min(1.0, 0.1 + (len(zip_value) % 7) / 10 + update.score / 2)

        first = cache.rank_all(row_probability)
        assert first
        # out-of-band write through the manager's trigger path
        update = state.updates()[0]
        db.set_value(update.tid, "zip", "00000")
        manager.refresh_suggestions()
        cached = cache.rank_all(row_probability)
        reference = estimator.rank_groups(group_updates(state.updates()), row_probability)
        assert [(g.key, b) for g, b in cached] == [(g.key, b) for g, b in reference]

    def test_external_write_parity(self, substrate):
        ds, db, detector, state, index, __, manager, estimator = substrate
        cache = GroupBenefitCache(estimator, index, detector, db)
        cache.rank_all(_score_probability)
        rng = random.Random(9)
        tids = db.tids()
        for __round in range(10):
            tid = tids[rng.randrange(len(tids))]
            db.set_value(tid, "city", rng.choice(["Ax", "Bx", "Cx"]))
            manager.refresh_suggestions()
            cached = cache.rank_all(_score_probability)
            reference = estimator.rank_groups(
                group_updates(state.updates()), _score_probability
            )
            assert [(g.key, b) for g, b in cached] == [(g.key, b) for g, b in reference]

    def test_refresh_rescored_count_shrinks(self, substrate):
        """The whole point: after one touch, most groups stay cached."""
        __, db, detector, state, index, __, manager, estimator = substrate
        cache = GroupBenefitCache(estimator, index, detector, db)
        first = cache.refresh(_score_probability)
        assert first == len(index)
        assert cache.refresh(_score_probability) == 0  # nothing moved
        update = state.updates()[0]
        manager.apply_feedback(update, UserFeedback(Feedback.CONFIRM))
        manager.refresh_suggestions()
        rescored = cache.refresh(_score_probability)
        assert 0 < rescored < len(index)
