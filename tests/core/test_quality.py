"""Tests for :mod:`repro.core.quality` (Eq. 2 / Eq. 3)."""

import pytest

from repro.constraints import RuleSet, ViolationDetector, parse_rules
from repro.core import QualityEvaluator, quality_improvement
from repro.db import Database, Schema


@pytest.fixture()
def setting():
    schema = Schema("r", ["zip", "city"])
    clean = Database(
        schema,
        [["46360", "Michigan City"]] * 4 + [["46825", "Fort Wayne"]] * 4,
    )
    rules = RuleSet(
        parse_rules(
            """
            phi1: (zip -> city, {46360 || 'Michigan City'})
            phi3: (zip -> city, {46825 || 'Fort Wayne'})
            """
        )
    )
    return schema, clean, rules


class TestQualityImprovement:
    def test_full_recovery(self):
        assert quality_improvement(0.8, 0.0) == 100.0

    def test_partial(self):
        assert quality_improvement(0.8, 0.4) == pytest.approx(50.0)

    def test_no_initial_loss(self):
        assert quality_improvement(0.0, 0.0) == 100.0

    def test_regression_is_negative(self):
        assert quality_improvement(0.5, 0.75) == pytest.approx(-50.0)


class TestQualityEvaluator:
    def test_clean_instance_has_zero_loss(self, setting):
        __, clean, rules = setting
        evaluator = QualityEvaluator(clean, rules)
        assert evaluator.loss_of(clean) == 0.0
        assert evaluator.ground_truth_violations == 0

    def test_loss_grows_with_errors(self, setting):
        __, clean, rules = setting
        evaluator = QualityEvaluator(clean, rules)
        one_bad = clean.snapshot()
        one_bad.set_value(0, "city", "Wrong")
        two_bad = one_bad.snapshot()
        two_bad.set_value(1, "city", "Wrong")
        assert 0 < evaluator.loss_of(one_bad) < evaluator.loss_of(two_bad)

    def test_eq3_weighted_sum(self, setting):
        __, clean, rules = setting
        evaluator = QualityEvaluator(clean, rules)
        dirty = clean.snapshot()
        dirty.set_value(0, "city", "Wrong")
        # phi1: w = 4/8, ql = (4 - 3)/4; phi3 untouched
        assert evaluator.loss_of(dirty) == pytest.approx(0.5 * 0.25)

    def test_context_escape_still_counts_as_loss(self, setting):
        """An error hiding a tuple from its context lowers |D |= phi|."""
        __, clean, rules = setting
        evaluator = QualityEvaluator(clean, rules)
        dirty = clean.snapshot()
        dirty.set_value(0, "zip", "99999")  # leaves phi1's context
        assert evaluator.loss_of(dirty) > 0

    def test_loss_via_live_detector(self, setting):
        __, clean, rules = setting
        evaluator = QualityEvaluator(clean, rules)
        dirty = clean.snapshot()
        dirty.set_value(0, "city", "Wrong")
        detector = ViolationDetector(dirty, rules)
        assert evaluator.loss(detector) == pytest.approx(evaluator.loss_of(dirty))
        dirty.set_value(0, "city", "Michigan City")
        assert evaluator.loss(detector) == 0.0

    def test_rule_loss_clamped(self, setting):
        __, clean, rules = setting
        evaluator = QualityEvaluator(clean, rules)
        detector = ViolationDetector(clean, rules)
        for rule in rules:
            assert 0.0 <= evaluator.rule_loss(detector, rule) <= 1.0

    def test_weights_fixed_from_ground_truth(self, setting):
        __, clean, rules = setting
        evaluator = QualityEvaluator(clean, rules)
        weights = evaluator.weights()
        assert weights[rules[0]] == pytest.approx(0.5)
        assert weights[rules[1]] == pytest.approx(0.5)

    def test_loss_bounded_by_total_weight(self, setting):
        __, clean, rules = setting
        evaluator = QualityEvaluator(clean, rules)
        worst = clean.snapshot()
        for tid in worst.tids():
            worst.set_value(tid, "city", "Garbage")
        assert evaluator.loss_of(worst) <= sum(evaluator.weights().values()) + 1e-9
