"""Delta-pipeline tests: rebuild parity and the learner drain.

The rebuild pipeline is the retained reference implementation; the
delta pipeline must reproduce its :class:`GDRResult` byte-for-byte for
fixed seeds — same labels, same learner decisions, same trajectory,
same final instance.
"""

import pytest

from repro.core import GDRConfig, GDREngine, GroundTruthOracle, LearnerPrediction
from repro.datasets import load_dataset
from repro.errors import ConfigError
from repro.repair import Feedback, UserFeedback


def _run(pipeline, preset, n=150, budget=40, data_seed=7, config_seed=3, **overrides):
    ds = load_dataset("hospital", n=n, seed=data_seed)
    db = ds.fresh_dirty()
    config = preset(seed=config_seed, pipeline=pipeline, **overrides)
    engine = GDREngine(db, ds.rules, GroundTruthOracle(ds.clean), config, clean_db=ds.clean)
    result = engine.run(feedback_limit=budget)
    return db, result, engine


def _trajectory(result):
    return [(p.feedback, p.learner_decisions, p.loss) for p in result.trajectory]


class TestPipelineConfig:
    def test_default_is_delta(self):
        assert GDRConfig().pipeline == "delta"

    def test_invalid_pipeline_rejected(self):
        with pytest.raises(ConfigError):
            GDRConfig(pipeline="bogus")

    def test_rebuild_engine_builds_no_index(self):
        ds = load_dataset("hospital", n=60, seed=0)
        engine = GDREngine(
            ds.fresh_dirty(),
            ds.rules,
            GroundTruthOracle(ds.clean),
            GDRConfig.gdr(pipeline="rebuild"),
        )
        assert engine.group_index is None
        assert engine.benefit_cache is None

    def test_delta_engine_builds_index_and_cache(self):
        ds = load_dataset("hospital", n=60, seed=0)
        engine = GDREngine(
            ds.fresh_dirty(), ds.rules, GroundTruthOracle(ds.clean), GDRConfig.gdr()
        )
        assert engine.group_index is not None
        assert engine.benefit_cache is not None
        assert engine.group_index.verify()


class TestByteIdenticalParity:
    @pytest.mark.parametrize(
        "preset",
        [GDRConfig.gdr, GDRConfig.s_learning, GDRConfig.active_learning, GDRConfig.no_learning],
        ids=["gdr", "s_learning", "active_learning", "no_learning"],
    )
    def test_delta_matches_rebuild(self, preset):
        db_delta, result_delta, __ = _run("delta", preset)
        db_rebuild, result_rebuild, __ = _run("rebuild", preset)
        assert db_delta.equals_data(db_rebuild)
        assert result_delta.feedback_used == result_rebuild.feedback_used
        assert result_delta.learner_decisions == result_rebuild.learner_decisions
        assert result_delta.iterations == result_rebuild.iterations
        assert result_delta.initial_loss == result_rebuild.initial_loss
        assert result_delta.final_loss == result_rebuild.final_loss
        assert _trajectory(result_delta) == _trajectory(result_rebuild)
        assert result_delta.remaining_dirty == result_rebuild.remaining_dirty

    @pytest.mark.parametrize("ranking", ["greedy", "random"])
    def test_baseline_rankings_match(self, ranking):
        kwargs = dict(ranking=ranking, learning="none", use_benefit_quota=False)
        db_delta, result_delta, __ = _run("delta", GDRConfig, **kwargs)
        db_rebuild, result_rebuild, __ = _run("rebuild", GDRConfig, **kwargs)
        assert db_delta.equals_data(db_rebuild)
        assert _trajectory(result_delta) == _trajectory(result_rebuild)

    def test_adult_dataset_parity(self):
        def run(pipeline):
            ds = load_dataset("adult", n=120, seed=2)
            db = ds.fresh_dirty()
            engine = GDREngine(
                db,
                ds.rules,
                GroundTruthOracle(ds.clean),
                GDRConfig.gdr(seed=1, pipeline=pipeline),
                clean_db=ds.clean,
            )
            return db, engine.run(feedback_limit=30)

        db_delta, result_delta = run("delta")
        db_rebuild, result_rebuild = run("rebuild")
        assert db_delta.equals_data(db_rebuild)
        assert _trajectory(result_delta) == _trajectory(result_rebuild)

    def test_greedy_pick_matches_rebuild_ranking(self):
        """The delta greedy pick reads sizes off the index's cached key
        order; it must select exactly what the rebuild path's
        ``GreedyRanking`` puts first, at every iteration state."""
        from repro.core.grouping import group_updates
        from repro.core.ranking import GreedyRanking

        ds = load_dataset("hospital", n=120, seed=4)
        db = ds.fresh_dirty()
        engine = GDREngine(
            db,
            ds.rules,
            GroundTruthOracle(ds.clean),
            GDRConfig(ranking="greedy", learning="none", use_benefit_quota=False, seed=2),
            clean_db=ds.clean,
        )
        strategy = GreedyRanking()
        checked = 0
        for __ in range(12):
            engine.manager.refresh_suggestions()
            if len(engine.state) == 0:
                break
            group, benefit, max_benefit, count = engine._pick_top_group()
            groups = group_updates(engine.state.updates())
            ranked = strategy.rank(groups, engine.probability)
            assert group.key == ranked[0][0].key
            assert group.updates == ranked[0][0].updates
            assert benefit == max_benefit == ranked[0][1]
            assert count == len(groups)
            checked += 1
            # consume the picked group so the next iteration differs
            for update in list(group.updates):
                if engine.state.contains(update):
                    engine.manager.apply_feedback(
                        update, UserFeedback(Feedback.CONFIRM), source="user"
                    )
        assert checked > 3
        engine.detach()

    def test_substrate_stays_verified_after_run(self):
        __, __, engine = _run("delta", GDRConfig.gdr)
        assert engine.detector.verify()
        assert engine.group_index.verify()

    def test_detach_releases_all_listeners(self):
        ds = load_dataset("hospital", n=60, seed=0)
        db = ds.fresh_dirty()
        first = GDREngine(
            db, ds.rules, GroundTruthOracle(ds.clean), GDRConfig.gdr()
        )
        first.detach()
        # a detached engine no longer observes writes...
        db.set_value(db.tids()[0], "city", "Nowhere")
        assert len(db._listeners) == 0
        # ...and a second engine over the same instance runs normally
        second = GDREngine(
            db, ds.rules, GroundTruthOracle(ds.clean), GDRConfig.gdr(), clean_db=ds.clean
        )
        result = second.run(feedback_limit=10)
        assert result.feedback_used > 0


class _ScriptedLearner:
    """Minimal learner double: always decides, always trusted."""

    def __init__(self, feedback=Feedback.CONFIRM, uncertainty=0.0, trusted=True):
        self.feedback = feedback
        self.uncertainty = uncertainty
        self.trusted = trusted
        self.predictions = 0

    def predict(self, update, row):
        self.predictions += 1
        return LearnerPrediction(
            feedback=self.feedback,
            confirm_probability=1.0 if self.feedback is Feedback.CONFIRM else 0.0,
            uncertainty=self.uncertainty,
        )

    def predict_many(self, updates, rows):
        return [self.predict(u, r) for u, r in zip(updates, rows)]

    def is_trusted(self, attribute):
        return self.trusted

    def model_version(self, attribute):
        return 0


def _drain_engine(grouping=True, pipeline="delta"):
    ds = load_dataset("hospital", n=80, seed=4)
    db = ds.fresh_dirty()
    config = GDRConfig(
        ranking="voi", learning="none", grouping=grouping,
        use_benefit_quota=False, pipeline=pipeline,
    )
    engine = GDREngine(db, ds.rules, GroundTruthOracle(ds.clean), config, clean_db=ds.clean)
    return engine


class TestDrainWithLearner:
    def test_zero_passes_decides_nothing(self):
        engine = _drain_engine()
        engine.learner = _ScriptedLearner()
        decided = engine._drain_with_learner(lambda: None, max_passes=0)
        assert decided == 0

    def test_locality_restriction_blocks_unvisited_groups(self):
        engine = _drain_engine(grouping=True)
        engine.learner = _ScriptedLearner()
        assert len(engine.state) > 0
        decided = engine._drain_with_learner(lambda: None)
        assert decided == 0  # no group was ever visited by the user
        assert engine.learner.predictions == 0

    def test_locality_allows_visited_groups_only(self):
        engine = _drain_engine(grouping=True)
        engine.learner = _ScriptedLearner(feedback=Feedback.RETAIN)
        key = engine.group_index.keys()[0]
        visited_size = engine.group_index.size(key)
        engine._visited_groups.add(key)
        decided = engine._drain_with_learner(lambda: None, max_passes=1)
        assert decided == visited_size  # retained every member, nothing else

    def test_no_grouping_drains_whole_pool(self):
        engine = _drain_engine(grouping=False)
        engine.learner = _ScriptedLearner(feedback=Feedback.RETAIN)
        pool = len(engine.state)
        decided = engine._drain_with_learner(lambda: None, max_passes=1)
        assert decided == pool

    def test_fixpoint_termination_and_idempotence(self):
        engine = _drain_engine(grouping=False)
        engine.learner = _ScriptedLearner(feedback=Feedback.CONFIRM)
        counter = [0]
        decided = engine._drain_with_learner(lambda: counter.__setitem__(0, counter[0] + 1))
        assert decided > 0
        assert counter[0] == decided
        # a second drain finds a fixpoint immediately
        assert engine._drain_with_learner(lambda: None) == 0

    def test_max_passes_caps_multi_pass_drains(self):
        capped = _drain_engine(grouping=False)
        capped.learner = _ScriptedLearner(feedback=Feedback.CONFIRM)
        decided_capped = capped._drain_with_learner(lambda: None, max_passes=1)

        free = _drain_engine(grouping=False)
        free.learner = _ScriptedLearner(feedback=Feedback.CONFIRM)
        decided_free = free._drain_with_learner(lambda: None, max_passes=25)
        # confirms regenerate suggestions, so the uncapped drain keeps
        # going past the first pass
        assert decided_free > decided_capped > 0

    def test_uncertain_predictions_not_decided(self):
        engine = _drain_engine(grouping=False)
        engine.learner = _ScriptedLearner(uncertainty=0.9)
        assert engine._drain_with_learner(lambda: None) == 0

    def test_untrusted_confirms_not_applied(self):
        engine = _drain_engine(grouping=False)
        engine.learner = _ScriptedLearner(feedback=Feedback.CONFIRM, trusted=False)
        assert engine._drain_with_learner(lambda: None) == 0

    def test_drain_parity_across_pipelines(self):
        from repro.core import group_updates

        outcomes = {}
        for pipeline in ("delta", "rebuild"):
            engine = _drain_engine(grouping=True, pipeline=pipeline)
            engine.learner = _ScriptedLearner(feedback=Feedback.CONFIRM)
            if engine.group_index is not None:
                keys = engine.group_index.keys()
            else:
                keys = [g.key for g in group_updates(engine.state.updates())]
            engine._visited_groups.update(keys[:2])
            decided = engine._drain_with_learner(lambda: None, max_passes=3)
            outcomes[pipeline] = (decided, engine.db.snapshot())
        decided_delta, db_delta = outcomes["delta"]
        decided_rebuild, db_rebuild = outcomes["rebuild"]
        assert decided_delta == decided_rebuild
        assert db_delta.equals_data(db_rebuild)
