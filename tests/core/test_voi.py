"""Tests for :mod:`repro.core.voi`, incl. the paper's §4.1 worked example."""

import pytest

from repro.constraints import CFD, RuleSet, ViolationDetector, parse_rules
from repro.constraints.violations import WhatIfOutcome
from repro.core import UpdateGroup, VOIEstimator
from repro.db import Database, Schema
from repro.repair import CandidateUpdate


class FakeStats:
    """Injectable stats provider reproducing arbitrary Eq. 6 inputs."""

    def __init__(self, outcomes, weights):
        self._outcomes = outcomes
        self._weights = weights

    def what_if(self, tid, attribute, value):
        return self._outcomes[(tid, attribute, value)]

    def weights(self):
        return self._weights


class TestPaperWorkedExample:
    """§4.1: three CT -> 'Michigan City' updates with p̃ = (.9, .6, .6),
    w1 = 4/8, each reducing vio(φ1) from 4 to 3 with |D^r ⊨ φ1| = 1,
    must yield E[g(c)] = 1.05."""

    def _make(self):
        phi1 = CFD(["zip"], "city", {"zip": "46360", "city": "Michigan City"}, name="phi1")
        updates = [
            CandidateUpdate(2, "city", "Michigan City", 0.9),
            CandidateUpdate(3, "city", "Michigan City", 0.6),
            CandidateUpdate(4, "city", "Michigan City", 0.6),
        ]
        outcomes = {
            (u.tid, "city", "Michigan City"): {
                phi1: WhatIfOutcome(vio_before=4, vio_after=3, satisfying_after=1)
            }
            for u in updates
        }
        weights = {phi1: 4 / 8}
        probabilities = {2: 0.9, 3: 0.6, 4: 0.6}
        return updates, outcomes, weights, probabilities

    def test_paper_worked_example(self):
        updates, outcomes, weights, probabilities = self._make()
        estimator = VOIEstimator(FakeStats(outcomes, weights))
        group = UpdateGroup(("city", "Michigan City"), updates)
        benefit = estimator.group_benefit(group, lambda u: probabilities[u.tid])
        assert benefit == pytest.approx(1.05)

    def test_individual_terms(self):
        updates, outcomes, weights, probabilities = self._make()
        estimator = VOIEstimator(FakeStats(outcomes, weights))
        first = estimator.update_benefit(updates[0], 0.9)
        assert first == pytest.approx(0.5 * 0.9 * (4 - 3) / 1)

    def test_fixed_weight_override(self):
        updates, outcomes, weights, probabilities = self._make()
        estimator = VOIEstimator(FakeStats(outcomes, {}), weights=weights)
        group = UpdateGroup(("city", "Michigan City"), updates)
        benefit = estimator.group_benefit(group, lambda u: probabilities[u.tid])
        assert benefit == pytest.approx(1.05)


class TestEq6Properties:
    def _estimator(self, vio_before, vio_after, satisfying_after, weight=1.0):
        rule = CFD(["a"], "b", {"a": "1", "b": "2"}, name="r")
        outcome = WhatIfOutcome(vio_before, vio_after, satisfying_after)
        stats = FakeStats({(0, "b", "x"): {rule: outcome}}, {rule: weight})
        return VOIEstimator(stats), CandidateUpdate(0, "b", "x", 0.5)

    def test_benefit_scales_with_probability(self):
        estimator, update = self._estimator(5, 2, 10)
        assert estimator.update_benefit(update, 1.0) == pytest.approx(
            2 * estimator.update_benefit(update, 0.5)
        )

    def test_harmful_update_has_negative_benefit(self):
        estimator, update = self._estimator(2, 5, 10)
        assert estimator.update_benefit(update, 0.8) < 0

    def test_zero_satisfying_denominator_guarded(self):
        estimator, update = self._estimator(5, 2, 0)
        assert estimator.update_benefit(update, 1.0) == pytest.approx(3.0)

    def test_zero_weight_rule_ignored(self):
        estimator, update = self._estimator(5, 2, 10, weight=0.0)
        assert estimator.update_benefit(update, 1.0) == 0.0


class TestRankGroups:
    def test_orders_by_benefit_descending(self):
        rule = CFD(["a"], "b", {"a": "1", "b": "2"}, name="r")
        outcomes = {
            (0, "b", "good"): {rule: WhatIfOutcome(5, 1, 10)},
            (1, "b", "bad"): {rule: WhatIfOutcome(5, 6, 10)},
        }
        stats = FakeStats(outcomes, {rule: 1.0})
        estimator = VOIEstimator(stats)
        good = UpdateGroup(("b", "good"), [CandidateUpdate(0, "b", "good", 0.9)])
        bad = UpdateGroup(("b", "bad"), [CandidateUpdate(1, "b", "bad", 0.9)])
        ranked = estimator.rank_groups([bad, good], lambda u: u.score)
        assert ranked[0][0] is good
        assert ranked[0][1] > ranked[1][1]

    def test_tie_broken_by_size(self):
        rule = CFD(["a"], "b", {"a": "1", "b": "2"}, name="r")
        outcome = {rule: WhatIfOutcome(5, 5, 10)}  # zero benefit
        outcomes = {
            (0, "b", "x"): outcome,
            (1, "b", "y"): outcome,
            (2, "b", "y"): outcome,
        }
        stats = FakeStats(outcomes, {rule: 1.0})
        estimator = VOIEstimator(stats)
        small = UpdateGroup(("b", "x"), [CandidateUpdate(0, "b", "x", 0.5)])
        big = UpdateGroup(
            ("b", "y"),
            [CandidateUpdate(1, "b", "y", 0.5), CandidateUpdate(2, "b", "y", 0.5)],
        )
        ranked = estimator.rank_groups([small, big], lambda u: u.score)
        assert ranked[0][0] is big


class TestAgainstRealDetector:
    def test_correct_fix_ranks_above_harmful_change(self):
        schema = Schema("r", ["zip", "city"])
        db = Database(
            schema,
            [["46360", "Westvile"], ["46360", "Michigan City"], ["46360", "Michigan City"]],
        )
        rules = RuleSet(parse_rules("(zip -> city, {46360 || 'Michigan City'})"))
        detector = ViolationDetector(db, rules)
        estimator = VOIEstimator(detector)
        fix = UpdateGroup(
            ("city", "Michigan City"),
            [CandidateUpdate(0, "city", "Michigan City", 0.8)],
        )
        harm = UpdateGroup(
            ("city", "Garbage"),
            [CandidateUpdate(1, "city", "Garbage", 0.8)],
        )
        ranked = estimator.rank_groups([harm, fix], lambda u: u.score)
        assert ranked[0][0] is fix
        assert ranked[0][1] > 0 > ranked[1][1]


class TestCacheStats:
    """The Eq. 6 term memo is observable (repolint cache-discipline)."""

    def _detector_estimator(self):
        schema = Schema("r", ["zip", "city"])
        db = Database(
            schema,
            [["46360", "Westvile"], ["46360", "Michigan City"], ["46360", "Michigan City"]],
        )
        rules = RuleSet(parse_rules("(zip -> city, {46360 || 'Michigan City'})"))
        detector = ViolationDetector(db, rules)
        return VOIEstimator(detector)

    def test_counters_move_with_the_memo(self):
        estimator = self._detector_estimator()
        group = UpdateGroup(
            ("city", "Michigan City"),
            [CandidateUpdate(0, "city", "Michigan City", 0.8)],
        )
        assert estimator.stats["term_memo_hits"] == 0
        estimator.group_benefit(group, lambda u: u.score)
        first = estimator.stats
        assert first["term_memo_misses"] >= 1
        assert first["term_memo_size"] == estimator.term_memo_size >= 1
        estimator.group_benefit(group, lambda u: u.score)
        second = estimator.stats
        assert second["term_memo_hits"] >= 1
        assert second["term_memo_misses"] == first["term_memo_misses"]
        assert second["term_memo_capacity"] > 0
        assert second["term_memo_clears"] == 0
