"""Tests for the session's batch composition (verification probes)."""

import pytest

from repro.constraints import ViolationDetector
from repro.core import FeedbackLearner, GroundTruthOracle, group_updates
from repro.core.effort import FeedbackBudget
from repro.core.session import InteractiveSession
from repro.repair import ConsistencyManager, RepairState, UpdateGenerator


@pytest.fixture()
def setting(hospital_dataset):
    db = hospital_dataset.fresh_dirty()
    detector = ViolationDetector(db, hospital_dataset.rules)
    state = RepairState()
    generator = UpdateGenerator(db, hospital_dataset.rules, detector, state)
    manager = ConsistencyManager(db, hospital_dataset.rules, detector, state, generator)
    generator.generate_all()
    oracle = GroundTruthOracle(hospital_dataset.clean)
    return db, state, manager, oracle


class TestProbeComposition:
    def test_probe_requires_learner_and_room(self, setting):
        db, state, manager, oracle = setting
        learner = FeedbackLearner(db.schema, min_examples=4, seed=0)
        session = InteractiveSession(
            db, state, manager, oracle, learner, batch_size=5, seed=0
        )
        groups = group_updates(state.updates())
        group = max(groups, key=lambda g: g.size)
        report = session.run(group, quota=5, budget=FeedbackBudget())
        assert report.labeled == 5

    def test_no_probe_in_random_ordering(self, setting):
        db, state, manager, oracle = setting
        learner = FeedbackLearner(db.schema, min_examples=4, seed=0)
        session = InteractiveSession(
            db, state, manager, oracle, learner, ordering="random", batch_size=5, seed=0
        )
        groups = group_updates(state.updates())
        group = max(groups, key=lambda g: g.size)
        report = session.run(group, quota=4, budget=FeedbackBudget())
        assert report.labeled == 4

    def test_small_group_no_probe_needed(self, setting):
        db, state, manager, oracle = setting
        learner = FeedbackLearner(db.schema, min_examples=4, seed=0)
        session = InteractiveSession(
            db, state, manager, oracle, learner, batch_size=10, seed=0
        )
        groups = group_updates(state.updates())
        group = min(groups, key=lambda g: g.size)
        report = session.run(group, quota=group.size, budget=FeedbackBudget())
        assert report.labeled <= group.size

    def test_budget_of_one_still_labels(self, setting):
        db, state, manager, oracle = setting
        learner = FeedbackLearner(db.schema, min_examples=4, seed=0)
        session = InteractiveSession(
            db, state, manager, oracle, learner, batch_size=10, seed=0
        )
        groups = group_updates(state.updates())
        group = max(groups, key=lambda g: g.size)
        budget = FeedbackBudget(limit=1)
        report = session.run(group, quota=10, budget=budget)
        assert report.labeled == 1
        assert budget.exhausted
