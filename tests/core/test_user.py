"""Tests for :mod:`repro.core.user` (simulated oracles)."""

import pytest

from repro.core import CallbackOracle, GroundTruthOracle, NoisyOracle
from repro.db import Database, Schema
from repro.repair import CandidateUpdate, Feedback, UserFeedback


@pytest.fixture()
def clean():
    return Database(Schema("r", ["a", "b"]), [["x", "y"], ["p", "q"]])


class TestGroundTruthOracle:
    def test_retain_when_current_correct(self, clean):
        oracle = GroundTruthOracle(clean)
        update = CandidateUpdate(0, "a", "whatever", 0.5)
        feedback = oracle.review(update, current_value="x")
        assert feedback.kind is Feedback.RETAIN

    def test_confirm_when_suggestion_matches_truth(self, clean):
        oracle = GroundTruthOracle(clean)
        update = CandidateUpdate(0, "a", "x", 0.5)
        feedback = oracle.review(update, current_value="wrong")
        assert feedback.kind is Feedback.CONFIRM

    def test_reject_with_correction(self, clean):
        oracle = GroundTruthOracle(clean)
        update = CandidateUpdate(0, "a", "also-wrong", 0.5)
        feedback = oracle.review(update, current_value="wrong")
        assert feedback.kind is Feedback.REJECT
        assert feedback.correction == "x"

    def test_reject_without_correction(self, clean):
        oracle = GroundTruthOracle(clean, provide_corrections=False)
        update = CandidateUpdate(0, "a", "also-wrong", 0.5)
        feedback = oracle.review(update, current_value="wrong")
        assert feedback.kind is Feedback.REJECT
        assert not feedback.has_correction

    def test_retain_takes_priority_over_confirm(self, clean):
        # current == truth and v == truth can only happen when v ==
        # current, which the generator never emits; but retain must win
        oracle = GroundTruthOracle(clean)
        update = CandidateUpdate(0, "a", "x", 0.5)
        assert oracle.review(update, current_value="x").kind is Feedback.RETAIN

    def test_consultations_counted(self, clean):
        oracle = GroundTruthOracle(clean)
        update = CandidateUpdate(0, "a", "x", 0.5)
        oracle.review(update, "x")
        oracle.review(update, "y")
        assert oracle.consultations == 2


class TestNoisyOracle:
    def test_zero_noise_is_transparent(self, clean):
        oracle = NoisyOracle(GroundTruthOracle(clean), error_rate=0.0, seed=0)
        update = CandidateUpdate(0, "a", "x", 0.5)
        assert oracle.review(update, "wrong").kind is Feedback.CONFIRM
        assert oracle.corrupted == 0

    def test_full_noise_always_flips(self, clean):
        oracle = NoisyOracle(GroundTruthOracle(clean), error_rate=1.0, seed=0)
        update = CandidateUpdate(0, "a", "x", 0.5)
        for __ in range(10):
            feedback = oracle.review(update, "wrong")
            assert feedback.kind is not Feedback.CONFIRM
        assert oracle.corrupted == 10

    def test_corrupted_answers_lose_corrections(self, clean):
        oracle = NoisyOracle(GroundTruthOracle(clean), error_rate=1.0, seed=0)
        update = CandidateUpdate(0, "a", "zz", 0.5)
        for __ in range(10):
            assert oracle.review(update, "wrong").correction is None

    def test_intermediate_rate(self, clean):
        oracle = NoisyOracle(GroundTruthOracle(clean), error_rate=0.5, seed=3)
        update = CandidateUpdate(0, "a", "x", 0.5)
        for __ in range(100):
            oracle.review(update, "wrong")
        assert 25 < oracle.corrupted < 75

    def test_invalid_rate(self, clean):
        with pytest.raises(ValueError):
            NoisyOracle(GroundTruthOracle(clean), error_rate=1.5)


class TestCallbackOracle:
    def test_delegates(self):
        oracle = CallbackOracle(lambda update, current: UserFeedback.retain())
        feedback = oracle.review(CandidateUpdate(0, "a", "v", 0.5), "x")
        assert feedback.kind is Feedback.RETAIN
        assert oracle.consultations == 1
