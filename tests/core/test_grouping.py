"""Tests for :mod:`repro.core.grouping`."""

from repro.core import UpdateGroup, group_updates
from repro.repair import CandidateUpdate


def _u(tid, attr="city", value="Fort Wayne", score=0.5):
    return CandidateUpdate(tid, attr, value, score)


class TestGroupUpdates:
    def test_groups_by_attribute_and_value(self):
        groups = group_updates(
            [_u(1), _u(2), _u(3, value="New Haven"), _u(4, attr="zip", value="1")]
        )
        keys = [g.key for g in groups]
        assert ("city", "Fort Wayne") in keys
        assert ("city", "New Haven") in keys
        assert ("zip", "1") in keys
        assert len(groups) == 3

    def test_members_sorted_by_cell(self):
        groups = group_updates([_u(5), _u(2), _u(9)])
        assert [u.tid for u in groups[0].updates] == [2, 5, 9]

    def test_groups_sorted_by_key(self):
        groups = group_updates([_u(1, attr="zip", value="2"), _u(2, attr="city")])
        assert [g.attribute for g in groups] == ["city", "zip"]

    def test_empty_input(self):
        assert group_updates([]) == []

    def test_grouping_disabled_puts_all_in_one_pool(self):
        groups = group_updates([_u(1), _u(2, attr="zip", value="9")], grouping=False)
        assert len(groups) == 1
        assert groups[0].size == 2
        assert groups[0].attribute == "*"

    def test_mixed_type_values_order_deterministically(self):
        """Regression: ``1`` and ``"1"`` share ``str()`` and used to tie.

        The old ``(attribute, str(value))`` sort key left the relative
        order of same-string, different-type group keys to dict
        insertion order; the type-aware tie-break must produce the same
        group order regardless of input order.
        """
        updates = [
            _u(1, attr="zip", value=1),
            _u(2, attr="zip", value="1"),
            _u(3, attr="zip", value=2),
            _u(4, attr="zip", value="2"),
        ]
        forward = [g.key for g in group_updates(updates)]
        backward = [g.key for g in group_updates(list(reversed(updates)))]
        assert forward == backward
        assert len(forward) == 4  # int 1 and str "1" are distinct groups

    def test_deterministic_given_same_input(self):
        updates = [_u(3), _u(1), _u(2, value="New Haven")]
        assert [g.key for g in group_updates(updates)] == [
            g.key for g in group_updates(list(reversed(updates)))
        ]


class TestUpdateGroup:
    def test_properties(self):
        group = UpdateGroup(("city", "Fort Wayne"), [_u(1), _u(2)])
        assert group.attribute == "city"
        assert group.value == "Fort Wayne"
        assert group.size == 2

    def test_mean_score(self):
        group = UpdateGroup(("city", "x"), [_u(1, score=0.2), _u(2, score=0.8)])
        assert group.mean_score() == 0.5

    def test_mean_score_empty(self):
        assert UpdateGroup(("city", "x")).mean_score() == 0.0

    def test_describe(self):
        group = UpdateGroup(("city", "Fort Wayne"), [_u(1)])
        assert "Fort Wayne" in group.describe()
        assert "1" in group.describe()
