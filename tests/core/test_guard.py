"""Tests for :mod:`repro.core.guard` (invariant guard + degradation)."""

import pytest

from repro.core import GDRConfig, GDREngine, GroundTruthOracle, InvariantGuard
from repro.core.guard import COMPONENTS, Incident, _Cursor
from repro.errors import IntegrityError


def make_engine(dirty, clean, rules, **overrides):
    config = GDRConfig.gdr(**overrides)
    return GDREngine(
        dirty, rules, GroundTruthOracle(clean), config=config, clean_db=clean
    )


@pytest.fixture()
def guarded(figure1_dirty, figure1_clean, figure1_rules):
    engine = make_engine(
        figure1_dirty, figure1_clean, figure1_rules, guard=True, guard_interval=1
    )
    return engine


class TestIncident:
    def test_as_dict(self):
        incident = Incident(component="sim_cache", detail="x", tick=3)
        assert incident.as_dict() == {
            "component": "sim_cache",
            "detail": "x",
            "tick": 3,
            "recovered": True,
        }


class TestCursor:
    def test_rotates_with_wraparound(self):
        cursor = _Cursor()
        ids = [0, 1, 2, 3, 4]
        assert cursor.take(ids, 3) == [0, 1, 2]
        assert cursor.take(ids, 3) == [3, 4, 0]
        assert cursor.take(ids, 3) == [1, 2, 3]

    def test_count_capped_at_population(self):
        cursor = _Cursor()
        assert cursor.take([0, 1], 16) == [0, 1]
        assert cursor.take([], 16) == []


class TestAudits:
    def test_clean_engine_audits_clean(self, guarded):
        assert guarded.guard.audit() == []
        assert guarded.guard.incidents == []

    def test_group_index_corruption_detected_and_rebuilt(self, guarded):
        index = guarded.group_index
        key, bucket = next(iter(index._members.items()))
        bucket.pop(next(iter(bucket)))  # drop one member behind the index's back
        assert not index.verify()
        incidents = guarded.guard.audit()
        assert [i.component for i in incidents] == ["group_index"]
        assert index.verify()  # rebuilt
        assert guarded.guard.consume_degraded("group_index")
        assert not guarded.guard.consume_degraded("group_index")  # one-shot

    def test_benefit_cache_corruption_detected_and_invalidated(self, guarded):
        cache = guarded.benefit_cache
        cache.rank_all(guarded.probability)  # populate
        key = next(iter(cache._benefit))
        cache._benefit[key] += 1234.5
        incidents = guarded.guard.audit()
        assert [i.component for i in incidents] == ["benefit_cache"]
        assert "Eq. 6" in incidents[0].detail
        assert guarded.guard.audit() == []  # invalidation restored agreement

    def test_sim_cache_corruption_detected_and_cleared(self, guarded):
        guarded.sim_cache._strs[("Westville", "Westvile")] = 0.001
        incidents = guarded.guard.audit()
        assert [i.component for i in incidents] == ["sim_cache"]
        assert len(guarded.sim_cache) == 0

    def test_columnar_corruption_detected_and_reencoded(self, guarded):
        columns = guarded.db.columns  # force the mirror to exist
        columns.set_cell(0, 3, "CORRUPTED-CITY")
        incidents = guarded.guard.audit()
        assert [i.component for i in incidents] == ["columns"]
        row = columns.position_of(0)
        assert columns.vocabulary(3).decode(columns.code_at(row, 3)) == (
            guarded.db.value(0, "city")
        )

    def test_in_place_recoveries_do_not_degrade(self, guarded):
        # sim_cache and columns recover fully in place (clear /
        # re-encode); no consumer exists for a degraded flag, so none
        # is set and degraded_steps stays honest
        guarded.sim_cache._strs[("Westville", "Westvile")] = 0.001
        guarded.db.columns.set_cell(0, 3, "CORRUPTED-CITY")
        incidents = guarded.guard.audit()
        assert {i.component for i in incidents} == {"sim_cache", "columns"}
        assert not guarded.guard.consume_degraded("sim_cache")
        assert not guarded.guard.consume_degraded("columns")
        assert guarded.guard.stats["degraded_steps"] == 0

    def test_tick_audits_on_interval(self, guarded):
        guard = InvariantGuard(guarded, interval=3)
        for _ in range(6):
            guard.tick()
        assert guard.stats["ticks"] == 6
        assert guard.stats["audits"] == 2

    def test_escalates_past_incident_budget(self, guarded):
        guard = InvariantGuard(guarded, interval=1, max_incidents=1)
        guarded.sim_cache._strs[("a", "b")] = 0.9
        guard.audit()  # first incident fits the budget
        guarded.sim_cache._strs[("a", "b")] = 0.9
        guarded.db.columns.set_cell(0, 0, "XX")
        with pytest.raises(IntegrityError, match="incidents"):
            guard.audit()

    def test_components_registry_matches_audits(self):
        assert COMPONENTS == ("group_index", "benefit_cache", "sim_cache", "columns")


class TestGuardedRunParity:
    @pytest.mark.parametrize("preset", ["gdr", "s_learning", "no_learning"])
    def test_guard_on_equals_guard_off(
        self, preset, figure1_dirty, figure1_clean, figure1_rules
    ):
        plain_db = figure1_dirty.snapshot()
        plain = GDREngine(
            plain_db,
            figure1_rules,
            GroundTruthOracle(figure1_clean),
            config=getattr(GDRConfig, preset)(),
            clean_db=figure1_clean,
        )
        expected = plain.run()

        guarded_db = figure1_dirty.snapshot()
        engine = GDREngine(
            guarded_db,
            figure1_rules,
            GroundTruthOracle(figure1_clean),
            config=getattr(GDRConfig, preset)(guard=True, guard_interval=1),
            clean_db=figure1_clean,
        )
        result = engine.run()
        assert guarded_db.equals_data(plain_db)
        assert result.feedback_used == expected.feedback_used
        assert result.remaining_dirty == expected.remaining_dirty
        assert engine.guard.stats["audits"] > 0
        assert engine.guard.incidents == []
