"""Tests for :mod:`repro.core.learner` (per-attribute feedback models)."""

import pytest

from repro.core import FeedbackLearner
from repro.db import Schema
from repro.repair import CandidateUpdate, Feedback


@pytest.fixture()
def schema():
    return Schema("r", ["src", "city", "zip"])


def _teach_pattern(learner, n=12):
    """Source H2 updates are confirmable; source H9 ones must be rejected."""
    for i in range(n):
        confirm = CandidateUpdate(i, "city", "Fort Wayne", 0.8)
        learner.add_example(confirm, ("H2", "FT Wayne", "46825"), Feedback.CONFIRM)
        reject = CandidateUpdate(100 + i, "city", "Garbage", 0.2)
        learner.add_example(reject, ("H9", "Fort Wayne", "46825"), Feedback.REJECT)
    learner.retrain("city")


class TestColdStart:
    def test_abstains_without_examples(self, schema):
        learner = FeedbackLearner(schema, seed=0)
        update = CandidateUpdate(0, "city", "Fort Wayne", 0.7)
        prediction = learner.predict(update, ("H2", "FT Wayne", "46825"))
        assert prediction.feedback is None
        assert not prediction.is_decision
        assert prediction.confirm_probability == pytest.approx(0.7)  # falls back to s
        assert prediction.uncertainty == 1.0

    def test_not_ready_below_min_examples(self, schema):
        learner = FeedbackLearner(schema, min_examples=5, seed=0)
        update = CandidateUpdate(0, "city", "v", 0.5)
        learner.add_example(update, ("H2", "a", "b"), Feedback.CONFIRM)
        learner.add_example(update, ("H2", "a", "b"), Feedback.REJECT)
        assert not learner.is_ready("city")
        assert learner.retrain("city") is False

    def test_not_ready_with_single_class(self, schema):
        learner = FeedbackLearner(schema, min_examples=2, seed=0)
        update = CandidateUpdate(0, "city", "v", 0.5)
        for __ in range(10):
            learner.add_example(update, ("H2", "a", "b"), Feedback.CONFIRM)
        assert not learner.is_ready("city")


class TestTrainedModel:
    def test_learns_source_correlation(self, schema):
        learner = FeedbackLearner(schema, min_examples=5, seed=0)
        _teach_pattern(learner)
        good = CandidateUpdate(999, "city", "Fort Wayne", 0.8)
        prediction = learner.predict(good, ("H2", "FT Wayne", "46825"))
        assert prediction.feedback is Feedback.CONFIRM
        bad = CandidateUpdate(998, "city", "Garbage", 0.2)
        prediction = learner.predict(bad, ("H9", "Fort Wayne", "46825"))
        assert prediction.feedback is Feedback.REJECT

    def test_confirm_probability_from_votes(self, schema):
        learner = FeedbackLearner(schema, min_examples=5, seed=0)
        _teach_pattern(learner)
        good = CandidateUpdate(999, "city", "Fort Wayne", 0.8)
        prediction = learner.predict(good, ("H2", "FT Wayne", "46825"))
        assert prediction.confirm_probability > 0.5

    def test_uncertainty_in_unit_range(self, schema):
        learner = FeedbackLearner(schema, min_examples=5, seed=0)
        _teach_pattern(learner)
        update = CandidateUpdate(0, "city", "Fort Wayne", 0.5)
        prediction = learner.predict(update, ("H5", "unseen", "unseen"))
        assert 0.0 <= prediction.uncertainty <= 1.0

    def test_retrain_only_when_stale(self, schema):
        learner = FeedbackLearner(schema, min_examples=5, seed=0)
        _teach_pattern(learner)
        assert learner.retrain("city") is False  # not stale anymore
        update = CandidateUpdate(0, "city", "v", 0.5)
        learner.add_example(update, ("H2", "a", "b"), Feedback.RETAIN)
        assert learner.retrain("city") is True

    def test_models_are_per_attribute(self, schema):
        learner = FeedbackLearner(schema, min_examples=5, seed=0)
        _teach_pattern(learner)
        zip_update = CandidateUpdate(0, "zip", "46825", 0.4)
        prediction = learner.predict(zip_update, ("H2", "Fort Wayne", "46391"))
        assert prediction.feedback is None  # zip model never trained

    def test_retrain_all(self, schema):
        learner = FeedbackLearner(schema, min_examples=2, seed=0)
        update_city = CandidateUpdate(0, "city", "v", 0.5)
        update_zip = CandidateUpdate(0, "zip", "z", 0.5)
        for fb in (Feedback.CONFIRM, Feedback.REJECT):
            learner.add_example(update_city, ("H1", "a", "b"), fb)
            learner.add_example(update_zip, ("H1", "a", "b"), fb)
        assert learner.retrain_all() == 2

    def test_example_counts(self, schema):
        learner = FeedbackLearner(schema, seed=0)
        _teach_pattern(learner, n=3)
        assert learner.example_count("city") == 6
        assert learner.total_examples() == 6

    def test_confirm_probability_shortcut(self, schema):
        learner = FeedbackLearner(schema, seed=0)
        update = CandidateUpdate(0, "city", "v", 0.33)
        assert learner.confirm_probability(update, ("a", "b", "c")) == pytest.approx(0.33)

    def test_repr(self, schema):
        learner = FeedbackLearner(schema, seed=0)
        assert "models fitted" in repr(learner)
