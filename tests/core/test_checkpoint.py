"""Tests for GDREngine.checkpoint / restore / resume (durable sessions)."""

import pickle

import pytest

from repro.core import GDRConfig, GDREngine, GroundTruthOracle
from repro.db import FeedbackJournal
from repro.errors import ConfigError, JournalError


def make_engine(dirty, clean, rules, tmp_path, preset="no_learning", **overrides):
    config = getattr(GDRConfig, preset)(
        journal_path=str(tmp_path / "journal.jsonl"), **overrides
    )
    return GDREngine(
        dirty, rules, GroundTruthOracle(clean), config=config, clean_db=clean
    )


class TestCheckpointRestore:
    def test_fresh_checkpoint_restores_identical_state(
        self, figure1_dirty, figure1_clean, figure1_rules, tmp_path
    ):
        engine = make_engine(figure1_dirty, figure1_clean, figure1_rules, tmp_path)
        cp = tmp_path / "session.cp"
        engine.checkpoint(cp)
        restored = GDREngine.restore(
            cp, figure1_rules, GroundTruthOracle(figure1_clean), figure1_clean
        )
        assert restored.db.equals_data(engine.db)
        assert restored.initial_db.equals_data(engine.initial_db)
        assert restored.initial_dirty == engine.initial_dirty
        assert {u for u in restored.state.updates()} == {
            u for u in engine.state.updates()
        }
        assert restored.state.frozen_cells() == engine.state.frozen_cells()
        assert restored.config == engine.config

    def test_restore_resume_matches_clean_run(
        self, figure1_dirty, figure1_clean, figure1_rules, tmp_path
    ):
        baseline_db = figure1_dirty.snapshot()
        baseline = GDREngine(
            baseline_db,
            figure1_rules,
            GroundTruthOracle(figure1_clean),
            config=GDRConfig.no_learning(),
            clean_db=figure1_clean,
        )
        expected = baseline.run()

        engine = make_engine(figure1_dirty, figure1_clean, figure1_rules, tmp_path)
        engine.checkpoint(tmp_path / "session.cp")
        engine.detach()
        restored = GDREngine.restore(
            tmp_path / "session.cp",
            figure1_rules,
            GroundTruthOracle(figure1_clean),
            figure1_clean,
        )
        result = restored.resume()
        assert restored.db.equals_data(baseline_db)
        assert result.remaining_dirty == expected.remaining_dirty
        assert result.feedback_used == expected.feedback_used

    def test_resumed_journal_replays_linearly(
        self, figure1_dirty, figure1_clean, figure1_rules, tmp_path
    ):
        cp = tmp_path / "auto.cp"
        engine = make_engine(
            figure1_dirty,
            figure1_clean,
            figure1_rules,
            tmp_path,
            preset="gdr",
            checkpoint_path=str(cp),
            checkpoint_every=1,
        )
        engine.run()
        engine.detach()
        final = engine.db.snapshot()
        # restore from the drain-start checkpoint and re-run the drain:
        # the re-execution appends its records under a resumed marker
        restored = GDREngine.restore(
            cp, figure1_rules, GroundTruthOracle(figure1_clean), figure1_clean
        )
        restored.resume()
        assert restored.db.equals_data(final)
        # the audit path survives the resume: the effective WAL replays
        # onto a fresh copy of the initial instance and lands on the
        # same final state, duplicates from the re-execution dropped
        copy = restored.initial_db.snapshot()
        FeedbackJournal.replay_writes(tmp_path / "journal.jsonl", copy)
        assert copy.equals_data(restored.db)
        restored.detach()

    def test_resume_rejects_foreign_journal(
        self, figure1_dirty, figure1_clean, figure1_rules, tmp_path
    ):
        engine = make_engine(figure1_dirty, figure1_clean, figure1_rules, tmp_path)
        cp = tmp_path / "session.cp"
        engine.checkpoint(cp)
        engine.detach()
        # swap in a journal recorded for a different instance
        other_db = figure1_clean.snapshot()
        journal_path = tmp_path / "journal.jsonl"
        journal_path.unlink()
        foreign = FeedbackJournal(journal_path)
        foreign.log_meta(other_db, {"seed": 0})
        foreign.close()
        restored = GDREngine.restore(
            cp, figure1_rules, GroundTruthOracle(figure1_clean), figure1_clean
        )
        with pytest.raises(JournalError, match="different instance"):
            restored.resume()
        restored.detach()

    def test_checkpoint_is_atomic(self, figure1_dirty, figure1_clean, figure1_rules, tmp_path):
        engine = make_engine(figure1_dirty, figure1_clean, figure1_rules, tmp_path)
        cp = tmp_path / "session.cp"
        engine.checkpoint(cp)
        assert cp.exists()
        assert not cp.with_name(cp.name + ".tmp").exists()

    def test_checkpoint_logged_in_journal(
        self, figure1_dirty, figure1_clean, figure1_rules, tmp_path
    ):
        engine = make_engine(figure1_dirty, figure1_clean, figure1_rules, tmp_path)
        engine.checkpoint(tmp_path / "session.cp")
        records = FeedbackJournal.read(tmp_path / "journal.jsonl")
        assert records[-1]["kind"] == "checkpoint"
        assert records[-1]["phase"] == "interactive"

    def test_auto_checkpoint_during_run(
        self, figure1_dirty, figure1_clean, figure1_rules, tmp_path
    ):
        cp = tmp_path / "auto.cp"
        engine = make_engine(
            figure1_dirty,
            figure1_clean,
            figure1_rules,
            tmp_path,
            checkpoint_path=str(cp),
            checkpoint_every=1,
        )
        engine.run()
        assert cp.exists()
        kinds = [r["kind"] for r in FeedbackJournal.read(tmp_path / "journal.jsonl")]
        assert kinds.count("checkpoint") >= 2  # per-iteration + drain start


class TestRestoreErrors:
    def test_missing_file(self, figure1_rules, figure1_clean, tmp_path):
        with pytest.raises(ConfigError, match="cannot read checkpoint"):
            GDREngine.restore(
                tmp_path / "absent.cp", figure1_rules, GroundTruthOracle(figure1_clean)
            )

    def test_bad_format(self, figure1_rules, figure1_clean, tmp_path):
        bad = tmp_path / "bad.cp"
        bad.write_bytes(pickle.dumps({"format": 99}))
        with pytest.raises(ConfigError, match="format"):
            GDREngine.restore(bad, figure1_rules, GroundTruthOracle(figure1_clean))

    def test_resume_without_restore(
        self, figure1_dirty, figure1_clean, figure1_rules, tmp_path
    ):
        engine = make_engine(figure1_dirty, figure1_clean, figure1_rules, tmp_path)
        with pytest.raises(ConfigError, match="restore"):
            engine.resume()


class TestHealth:
    def test_health_sections(self, figure1_dirty, figure1_clean, figure1_rules, tmp_path):
        engine = make_engine(
            figure1_dirty, figure1_clean, figure1_rules, tmp_path, guard=True
        )
        engine.run()
        health = engine.health()
        assert set(health) >= {"sim", "cache", "voi", "guard", "journal", "incidents", "faults"}
        assert health["journal"]["seq"] > 0
        assert health["guard"]["ticks"] > 0
        assert health["voi"]["term_memo_size"] >= 0
        assert health["incidents"] == []
        # the faults section mirrors the machine-readable registry
        from repro.testing.faults import FAULT_POINT_REGISTRY

        assert set(health["faults"]["registered"]) == {
            p.name for p in FAULT_POINT_REGISTRY
        }
        assert health["faults"]["registered"]["journal.append"] == "repro.db.journal"
        assert health["faults"]["armed"] == []

    def test_health_without_robustness_layer(
        self, figure1_dirty, figure1_clean, figure1_rules
    ):
        engine = GDREngine(
            figure1_dirty,
            figure1_rules,
            GroundTruthOracle(figure1_clean),
            config=GDRConfig.no_learning(),
            clean_db=figure1_clean,
        )
        health = engine.health()
        assert health["guard"] == {}
        assert health["journal"] == {}
        assert "incidents" not in health
