"""Batch-safe learner drain: the shared batched decision engine,
byte-identical parity with the sequential reference, bounded VOI
caches, and per-rule staleness parity.

The acceptance contract of the batched drain is *byte-for-byte*
equality with ``drain="sequential"``: same labels, same learner
decisions in the same order, same trajectory, same final instance —
for every preset, both datasets, and randomized multi-suggestion
pools.
"""

import random
from types import SimpleNamespace

import pytest

from repro.core import GDRConfig, GDREngine, GroundTruthOracle, LearnerPrediction
from repro.core.session import decide_batched
from repro.datasets import load_dataset
from repro.db import Database, Schema
from repro.errors import ConfigError
from repro.repair import Feedback
from repro.repair.candidate import CandidateUpdate


def _run(drain, preset, dataset="hospital", n=120, budget=30, data_seed=7, config_seed=3, **overrides):
    ds = load_dataset(dataset, n=n, seed=data_seed)
    db = ds.fresh_dirty()
    config = preset(seed=config_seed, drain=drain, **overrides)
    engine = GDREngine(db, ds.rules, GroundTruthOracle(ds.clean), config, clean_db=ds.clean)
    result = engine.run(feedback_limit=budget)
    return db, result, engine


def _signature(db, result):
    return (
        result.feedback_used,
        result.learner_decisions,
        result.iterations,
        result.final_loss,
        tuple((p.feedback, p.learner_decisions, p.loss) for p in result.trajectory),
        tuple(tuple(row.values) for row in db.rows()),
    )


class TestDrainConfig:
    def test_default_is_batched(self):
        assert GDRConfig().drain == "batched"

    def test_invalid_drain_rejected(self):
        with pytest.raises(ConfigError):
            GDRConfig(drain="bogus")

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigError):
            GDRConfig(voi_cache_capacity=0)

    def test_session_rejects_invalid_drain(self):
        from repro.core.session import InteractiveSession

        with pytest.raises(ValueError):
            InteractiveSession(None, None, None, None, None, drain="bogus")


class _RecordingLearner:
    """Learner double: scripted feedback, records every row it saw."""

    def __init__(self, feedback=Feedback.CONFIRM):
        self.feedback = feedback
        self.batched: list[tuple[tuple[int, str], tuple]] = []
        self.scalar: list[tuple[tuple[int, str], tuple]] = []

    def _prediction(self):
        return LearnerPrediction(
            feedback=self.feedback,
            confirm_probability=1.0 if self.feedback is Feedback.CONFIRM else 0.0,
            uncertainty=0.0,
        )

    def predict(self, update, row):
        self.scalar.append((update.cell, tuple(row)))
        return self._prediction()

    def predict_many(self, updates, rows):
        for update, row in zip(updates, rows):
            self.batched.append((update.cell, tuple(row)))
        return [self._prediction() for __ in updates]


class _FakeState:
    def contains(self, update):
        return True


class _FakeManager:
    """Applies confirms as real writes; records the apply order."""

    def __init__(self, db):
        self.db = db
        self.applied: list[tuple[int, str]] = []

    def apply_feedback(self, update, feedback, source):
        self.applied.append(update.cell)
        wrote = feedback.kind is Feedback.CONFIRM
        if wrote:
            self.db.set_value(update.tid, update.attribute, update.value, source=source)
        return SimpleNamespace(wrote_database=wrote)


class TestDecideBatched:
    """The shared batch engine: one committee pass, in-order applies,
    re-prediction only after an actual same-tuple write."""

    def _substrate(self):
        db = Database(Schema("r", ["a", "b"]), [["a0", "b0"], ["a1", "b1"]])
        return db, _FakeState(), _FakeManager(db)

    def test_empty_batch(self):
        db, state, manager = self._substrate()
        learner = _RecordingLearner()
        assert decide_batched(db, learner, state, manager, [], lambda u, p: True, lambda: None) == 0
        assert learner.batched == [] and learner.scalar == []

    def test_applies_in_list_order(self):
        db, state, manager = self._substrate()
        learner = _RecordingLearner(feedback=Feedback.RETAIN)
        updates = [
            CandidateUpdate(1, "a", "x", 0.5),
            CandidateUpdate(0, "b", "y", 0.5),
            CandidateUpdate(0, "a", "z", 0.5),
        ]
        n = decide_batched(db, learner, state, manager, updates, lambda u, p: True, lambda: None)
        assert n == 3
        assert manager.applied == [(1, "a"), (0, "b"), (0, "a")]

    def test_no_writes_means_single_committee_pass(self):
        """Retains/rejects never write, so no re-predictions happen even
        for tuples carrying several suggestions."""
        db, state, manager = self._substrate()
        learner = _RecordingLearner(feedback=Feedback.RETAIN)
        updates = [CandidateUpdate(0, "a", "x", 0.5), CandidateUpdate(0, "b", "y", 0.5)]
        decide_batched(db, learner, state, manager, updates, lambda u, p: True, lambda: None)
        assert len(learner.batched) == 2
        assert learner.scalar == []

    def test_same_tuple_write_triggers_repredict_on_live_row(self):
        """A confirm earlier in the batch closes the wave for its tuple:
        the tuple's later suggestion is re-predicted against the
        post-write row, exactly as the sequential reference sees it."""
        db, state, manager = self._substrate()
        learner = _RecordingLearner(feedback=Feedback.CONFIRM)
        updates = [
            CandidateUpdate(0, "a", "A0'", 0.5),
            CandidateUpdate(0, "b", "B0'", 0.5),
            CandidateUpdate(1, "a", "A1'", 0.5),
        ]
        decide_batched(db, learner, state, manager, updates, lambda u, p: True, lambda: None)
        # the batch saw every row at snapshot state
        assert learner.batched == [
            ((0, "a"), ("a0", "b0")),
            ((0, "b"), ("a0", "b0")),
            ((1, "a"), ("a1", "b1")),
        ]
        # only (0, "b") was re-predicted, on the row as written by (0, "a")
        assert learner.scalar == [((0, "b"), ("A0'", "b0"))]
        # tuple 1 was never re-predicted: writes to tuple 0 cannot
        # invalidate its batched prediction
        assert manager.applied == [(0, "a"), (0, "b"), (1, "a")]
        assert db.value(0, "b") == "B0'"

    def test_gate_rejections_do_not_apply(self):
        db, state, manager = self._substrate()
        learner = _RecordingLearner()
        updates = [CandidateUpdate(0, "a", "x", 0.5)]
        n = decide_batched(db, learner, state, manager, updates, lambda u, p: False, lambda: None)
        assert n == 0
        assert manager.applied == []

    def test_callback_fired_per_apply(self):
        db, state, manager = self._substrate()
        learner = _RecordingLearner(feedback=Feedback.RETAIN)
        updates = [CandidateUpdate(0, "a", "x", 0.5), CandidateUpdate(1, "a", "y", 0.5)]
        fired = []
        decide_batched(
            db, learner, state, manager, updates, lambda u, p: True, lambda: fired.append(1)
        )
        assert len(fired) == 2

    def test_snapshot_view_released_after_batch(self):
        db, state, manager = self._substrate()
        learner = _RecordingLearner(feedback=Feedback.RETAIN)
        before = len(db._listeners)
        decide_batched(
            db,
            learner,
            state,
            manager,
            [CandidateUpdate(0, "a", "x", 0.5)],
            lambda u, p: True,
            lambda: None,
        )
        assert len(db._listeners) == before


class TestByteIdenticalDrain:
    @pytest.mark.parametrize(
        "preset",
        [GDRConfig.gdr, GDRConfig.s_learning, GDRConfig.active_learning],
        ids=["gdr", "s_learning", "active_learning"],
    )
    def test_batched_matches_sequential_hospital(self, preset):
        db_b, result_b, __ = _run("batched", preset)
        db_s, result_s, __ = _run("sequential", preset)
        assert _signature(db_b, result_b) == _signature(db_s, result_s)

    def test_batched_matches_sequential_adult(self):
        db_b, result_b, __ = _run("batched", GDRConfig.gdr, dataset="adult")
        db_s, result_s, __ = _run("sequential", GDRConfig.gdr, dataset="adult")
        assert _signature(db_b, result_b) == _signature(db_s, result_s)

    def test_batched_matches_sequential_rebuild_pipeline(self):
        kwargs = dict(pipeline="rebuild", n=80, budget=20)
        db_b, result_b, __ = _run("batched", GDRConfig.gdr, **kwargs)
        db_s, result_s, __ = _run("sequential", GDRConfig.gdr, **kwargs)
        assert _signature(db_b, result_b) == _signature(db_s, result_s)

    @pytest.mark.parametrize("seed", [0, 11, 23])
    def test_property_randomized_multi_suggestion_pools(self, seed):
        """Ungrouped pools put several suggestions on one tuple, forcing
        wave boundaries; randomized corruption seeds vary which tuples
        carry them. The decision stream must match regardless."""
        kwargs = dict(dataset="hospital", n=100, budget=25, data_seed=seed, config_seed=seed)
        db_b, result_b, engine_b = _run("batched", GDRConfig.active_learning, **kwargs)
        db_s, result_s, __ = _run("sequential", GDRConfig.active_learning, **kwargs)
        assert _signature(db_b, result_b) == _signature(db_s, result_s)

    def test_run_without_drain_plus_drain_remaining_equals_full_run(self):
        """``run(drain=False)`` followed by ``drain_remaining()`` is the
        full run, decision for decision — the seam the drain benchmark
        relies on to time the automatic phase in isolation."""

        def build():
            ds = load_dataset("hospital", n=100, seed=7)
            db = ds.fresh_dirty()
            engine = GDREngine(
                db, ds.rules, GroundTruthOracle(ds.clean), GDRConfig.gdr(seed=3),
                clean_db=ds.clean,
            )
            return db, engine

        db_full, engine_full = build()
        result_full = engine_full.run(feedback_limit=25)
        db_split, engine_split = build()
        result_split = engine_split.run(feedback_limit=25, drain=False)
        decided_after = engine_split.drain_remaining()
        assert result_split.learner_decisions + decided_after == result_full.learner_decisions
        assert db_split.equals_data(db_full)

    def test_drain_remaining_unrestricted_covers_whole_pool(self):
        ds = load_dataset("hospital", n=100, seed=7)
        db = ds.fresh_dirty()
        engine = GDREngine(
            db, ds.rules, GroundTruthOracle(ds.clean), GDRConfig.gdr(seed=3), clean_db=ds.clean
        )
        engine.run(feedback_limit=25, drain=False)
        restricted = engine.drain_remaining()  # honours grouping locality
        unrestricted = engine.drain_remaining(restrict=False)
        # once locality is lifted the learner may decide strictly more
        assert unrestricted >= 0 and restricted >= 0
        assert engine.learner is not None

    def test_drain_remaining_without_learner_is_zero(self):
        ds = load_dataset("hospital", n=60, seed=7)
        db = ds.fresh_dirty()
        engine = GDREngine(
            db,
            ds.rules,
            GroundTruthOracle(ds.clean),
            GDRConfig.no_learning(seed=3),
            clean_db=ds.clean,
        )
        assert engine.drain_remaining(restrict=False) == 0


class TestBoundedCaches:
    def test_forced_small_capacity_evicts_and_preserves_results(self):
        db_small, result_small, engine_small = _run(
            "batched", GDRConfig.gdr, voi_cache_capacity=8
        )
        db_big, result_big, engine_big = _run("batched", GDRConfig.gdr)
        stats = engine_small.benefit_cache.stats
        assert stats["prob_memo_evictions"] > 0
        assert stats["prob_memo_size"] <= 8
        assert stats["row_versions_size"] <= 8
        assert stats["row_generation_bumps"] > 0
        # eviction is a memory policy, never a semantics change
        assert _signature(db_small, result_small) == _signature(db_big, result_big)

    def test_stats_counters_populated_on_default_run(self):
        __, __, engine = _run("batched", GDRConfig.gdr)
        stats = engine.benefit_cache.stats
        assert stats["prob_memo_hits"] > 0
        assert stats["prob_memo_misses"] > 0
        assert stats["prob_memo_evictions"] == 0
        assert stats["row_generation_bumps"] == 0


class TestPerRuleStalenessParity:
    def test_cache_matches_rebuild_ranking_after_run(self):
        """The stamped cache (per-rule staleness, memoised p̃) must rank
        exactly like a from-scratch ``rank_groups`` over the live pool."""
        __, __, engine = _run("batched", GDRConfig.gdr, budget=20)
        engine.manager.refresh_suggestions()
        cached = engine.benefit_cache.rank_all(engine.probability)
        rebuilt = engine.voi.rank_groups(engine.group_index.groups(), engine.probability)
        assert [(g.key, b) for g, b in cached] == [(g.key, b) for g, b in rebuilt]

    def test_cache_matches_rebuild_ranking_under_churn(self):
        ds = load_dataset("hospital", n=80, seed=5)
        db = ds.fresh_dirty()
        engine = GDREngine(
            db, ds.rules, GroundTruthOracle(ds.clean), GDRConfig.gdr(seed=1), clean_db=ds.clean
        )
        rng = random.Random(3)
        tids = db.tids()
        attrs = list(db.schema.attributes)
        for step in range(25):
            engine.manager.refresh_suggestions()
            cached = engine.benefit_cache.rank_all(engine.probability)
            rebuilt = engine.voi.rank_groups(engine.group_index.groups(), engine.probability)
            assert [(g.key, b) for g, b in cached] == [
                (g.key, b) for g, b in rebuilt
            ], f"diverged at step {step}"
            tid = tids[rng.randrange(len(tids))]
            attr = rng.choice(attrs)
            db.set_value(tid, attr, str(db.value(tid, attr)) + "x")
        engine.detach()
