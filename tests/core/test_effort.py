"""Tests for :mod:`repro.core.effort` (budget + d_i quota formula)."""

import pytest

from repro.core import EffortPolicy, FeedbackBudget
from repro.errors import ConfigError


class TestFeedbackBudget:
    def test_unlimited(self):
        budget = FeedbackBudget()
        budget.consume(1000)
        assert not budget.exhausted
        assert budget.remaining is None

    def test_limited(self):
        budget = FeedbackBudget(limit=3)
        assert budget.remaining == 3
        budget.consume(2)
        assert budget.remaining == 1
        assert not budget.exhausted
        budget.consume()
        assert budget.exhausted
        assert budget.remaining == 0

    def test_overconsumption_clamps_remaining(self):
        budget = FeedbackBudget(limit=1)
        budget.consume(5)
        assert budget.remaining == 0

    def test_zero_budget_immediately_exhausted(self):
        assert FeedbackBudget(limit=0).exhausted

    def test_negative_limit_rejected(self):
        with pytest.raises(ConfigError):
            FeedbackBudget(limit=-1)

    def test_repr(self):
        assert "0/3" in repr(FeedbackBudget(limit=3))
        assert "∞" in repr(FeedbackBudget())


class TestEffortPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [{"batch_size": 0}, {"min_labels": -1}, {"fixed_quota": -2}],
    )
    def test_invalid_params(self, kwargs):
        with pytest.raises(ConfigError):
            EffortPolicy(**kwargs)


class TestBenefitQuota:
    """d_i = E x (1 - g/gmax), clamped into [min_labels, group size]."""

    def test_top_group_gets_minimum(self):
        policy = EffortPolicy(min_labels=2)
        assert policy.group_quota(group_size=50, benefit=1.0, max_benefit=1.0, initial_dirty=100) == 2

    def test_zero_benefit_group_gets_full_quota(self):
        policy = EffortPolicy(min_labels=2)
        quota = policy.group_quota(group_size=50, benefit=0.0, max_benefit=1.0, initial_dirty=100)
        assert quota == 50  # E(1-0) = 100, clamped to group size

    def test_intermediate_benefit(self):
        policy = EffortPolicy(min_labels=2)
        quota = policy.group_quota(group_size=100, benefit=0.5, max_benefit=1.0, initial_dirty=60)
        assert quota == 30  # 60 * (1 - 0.5)

    def test_small_group_clamped(self):
        policy = EffortPolicy(min_labels=5)
        quota = policy.group_quota(group_size=3, benefit=1.0, max_benefit=1.0, initial_dirty=100)
        assert quota == 3  # min_labels clamped to group size

    def test_negative_benefit_treated_as_zero_ratio(self):
        policy = EffortPolicy(min_labels=1)
        quota = policy.group_quota(group_size=10, benefit=-5.0, max_benefit=2.0, initial_dirty=10)
        assert quota == 10

    def test_nonpositive_max_benefit_verifies_whole_group(self):
        policy = EffortPolicy()
        assert policy.group_quota(10, 0.0, 0.0, 100) == 10
        assert policy.group_quota(10, -1.0, -0.5, 100) == 10


class TestFixedQuota:
    def test_fixed_quota(self):
        policy = EffortPolicy(use_benefit_quota=False, fixed_quota=4)
        assert policy.group_quota(10, 1.0, 1.0, 100) == 4

    def test_fixed_quota_clamped_to_group(self):
        policy = EffortPolicy(use_benefit_quota=False, fixed_quota=15)
        assert policy.group_quota(10, 1.0, 1.0, 100) == 10

    def test_none_quota_means_whole_group(self):
        policy = EffortPolicy(use_benefit_quota=False, fixed_quota=None)
        assert policy.group_quota(10, 1.0, 1.0, 100) == 10
