"""Tests for :mod:`repro.core.session` (the interactive group session)."""

import pytest

from repro.constraints import ViolationDetector
from repro.core import FeedbackLearner, GroundTruthOracle, UpdateGroup, group_updates
from repro.core.effort import FeedbackBudget
from repro.core.session import InteractiveSession
from repro.repair import ConsistencyManager, RepairState, UpdateGenerator


@pytest.fixture()
def setting(figure1_dirty, figure1_clean, figure1_rules):
    detector = ViolationDetector(figure1_dirty, figure1_rules)
    state = RepairState()
    generator = UpdateGenerator(figure1_dirty, figure1_rules, detector, state)
    manager = ConsistencyManager(figure1_dirty, figure1_rules, detector, state, generator)
    generator.generate_all()
    oracle = GroundTruthOracle(figure1_clean)
    return figure1_dirty, detector, state, manager, oracle


def _session(setting, learner=None, ordering="uncertainty", batch_size=10):
    db, __, state, manager, oracle = setting
    return InteractiveSession(
        db, state, manager, oracle, learner, ordering=ordering, batch_size=batch_size, seed=0
    )


class TestSessionBasics:
    def test_invalid_ordering_rejected(self, setting):
        db, __, state, manager, oracle = setting
        with pytest.raises(ValueError):
            InteractiveSession(db, state, manager, oracle, None, ordering="bogus")

    def test_labels_up_to_quota(self, setting):
        db, __, state, __m, __o = setting
        session = _session(setting)
        groups = group_updates(state.updates())
        group = max(groups, key=lambda g: g.size)
        report = session.run(group, quota=1, budget=FeedbackBudget())
        assert report.labeled == 1

    def test_respects_global_budget(self, setting):
        db, __, state, __m, __o = setting
        session = _session(setting)
        groups = group_updates(state.updates())
        group = max(groups, key=lambda g: g.size)
        budget = FeedbackBudget(limit=0)
        report = session.run(group, quota=10, budget=budget)
        assert report.labeled == 0

    def test_feedback_counts_by_kind(self, setting):
        db, __, state, __m, __o = setting
        session = _session(setting)
        for group in group_updates(state.updates()):
            report = session.run(group, quota=group.size, budget=FeedbackBudget())
            assert report.labeled == (
                report.user_confirms + report.user_rejects + report.user_retains
            )

    def test_callbacks_fired_per_label(self, setting):
        db, __, state, __m, __o = setting
        session = _session(setting)
        groups = group_updates(state.updates())
        group = max(groups, key=lambda g: g.size)
        ticks = []
        session.run(
            group, quota=2, budget=FeedbackBudget(), on_feedback=lambda: ticks.append(1)
        )
        assert len(ticks) == 2

    def test_empty_group_no_labels(self, setting):
        session = _session(setting)
        report = session.run(UpdateGroup(("city", "zzz")), quota=5, budget=FeedbackBudget())
        assert report.labeled == 0


class TestOrdering:
    def test_random_ordering_used_without_learner(self, setting):
        session = _session(setting, ordering="random")
        db, __, state, __m, __o = setting
        group = group_updates(state.updates())[0]
        report = session.run(group, quota=group.size, budget=FeedbackBudget())
        assert report.labeled > 0

    def test_uncertainty_ordering_with_cold_learner_uses_scores(self, setting):
        db, __, state, __m, __o = setting
        learner = FeedbackLearner(db.schema, seed=0)
        session = _session(setting, learner=learner)
        updates = state.updates()
        ordered = session._order(updates)
        scores = [u.score for u in ordered]
        assert scores == sorted(scores, reverse=True)


class TestLearnerIntegration:
    def test_labels_become_training_examples(self, setting):
        db, __, state, __m, __o = setting
        learner = FeedbackLearner(db.schema, min_examples=3, seed=0)
        session = _session(setting, learner=learner)
        group = max(group_updates(state.updates()), key=lambda g: g.size)
        session.run(group, quota=group.size, budget=FeedbackBudget())
        assert learner.total_examples() > 0

    def test_correction_adds_confirm_example(self, setting):
        db, __, state, __m, oracle = setting
        learner = FeedbackLearner(db.schema, min_examples=99, seed=0)
        session = _session(setting, learner=learner)
        # run everything; rejects with corrections add extra examples
        total_labels = 0
        for group in group_updates(state.updates()):
            report = session.run(group, quota=group.size, budget=FeedbackBudget())
            total_labels += report.labeled
        assert learner.total_examples() >= total_labels

    def test_delegation_requires_confidence(self, setting):
        db, __, state, __m, __o = setting
        learner = FeedbackLearner(db.schema, min_examples=10_000, seed=0)
        session = _session(setting, learner=learner)
        group = max(group_updates(state.updates()), key=lambda g: g.size)
        report = session.run(group, quota=1, budget=FeedbackBudget())
        assert report.learner_decided == 0  # model never ready -> no decisions
