"""Tests for the incrementally maintained :class:`GroupIndex`."""

import random

from repro.core import GroupIndex, group_sort_key, group_updates
from repro.repair import CandidateUpdate, RepairState


def _update(tid, attr, value, score=0.5):
    return CandidateUpdate(tid, attr, value, score)


class TestEventMaintenance:
    def test_seeds_from_existing_state(self):
        state = RepairState()
        state.put(_update(1, "city", "A"))
        state.put(_update(2, "city", "A"))
        index = GroupIndex(state)
        assert len(index) == 1
        assert index.size(("city", "A")) == 2
        assert index.verify()

    def test_put_remove_freeze_clear(self):
        state = RepairState()
        index = GroupIndex(state)
        state.put(_update(1, "city", "A", 0.25))
        state.put(_update(2, "city", "A", 0.75))
        state.put(_update(1, "zip", "9", 0.9))
        assert index.verify()
        assert index.size(("city", "A")) == 2
        assert index.mean_score(("city", "A")) == 0.5

        # replacing a suggestion moves it between groups
        state.put(_update(1, "city", "B", 0.8))
        assert index.verify()
        assert index.size(("city", "A")) == 1
        assert index.size(("city", "B")) == 1

        state.freeze((2, "city"))
        assert index.verify()
        assert ("city", "A") not in index

        state.remove((1, "zip"))
        assert index.verify()

        state.clear_updates()
        assert index.verify()
        assert len(index) == 0

    def test_same_update_reput_keeps_scores_exact(self):
        state = RepairState()
        index = GroupIndex(state)
        update = _update(3, "city", "A", 0.3)
        state.put(update)
        for __ in range(5):
            state.put(update)
        assert index.mean_score(("city", "A")) == 0.3
        assert index.verify()

    def test_keys_for_tid(self):
        state = RepairState()
        index = GroupIndex(state)
        state.put(_update(1, "city", "A"))
        state.put(_update(1, "zip", "9"))
        state.put(_update(2, "city", "A"))
        assert index.keys_for_tid(1) == {("city", "A"), ("zip", "9")}
        state.remove((1, "city"))
        assert index.keys_for_tid(1) == {("zip", "9")}
        state.remove((1, "zip"))
        assert index.keys_for_tid(1) == frozenset()

    def test_group_materialisation_sorted_and_cached(self):
        state = RepairState()
        index = GroupIndex(state)
        state.put(_update(5, "city", "A"))
        state.put(_update(1, "city", "A"))
        group = index.group(("city", "A"))
        assert [u.tid for u in group.updates] == [1, 5]
        assert index.group(("city", "A")) is group  # cached
        state.put(_update(3, "city", "A"))
        rebuilt = index.group(("city", "A"))
        assert rebuilt is not group
        assert [u.tid for u in rebuilt.updates] == [1, 3, 5]

    def test_groups_match_reference_order(self):
        state = RepairState()
        index = GroupIndex(state)
        rng = random.Random(7)
        for tid in range(40):
            attr = rng.choice(["city", "zip", "state"])
            value = rng.choice(["A", "B", 1, "1", 2.0])
            state.put(CandidateUpdate(tid, attr, value, rng.random()))
        reference = group_updates(state.updates())
        assert [g.key for g in index.groups()] == [g.key for g in reference]
        assert [g.updates for g in index.groups()] == [g.updates for g in reference]


class TestUngrouped:
    def test_single_pseudo_group(self):
        state = RepairState()
        index = GroupIndex(state, grouping=False)
        state.put(_update(1, "city", "A"))
        state.put(_update(1, "zip", "9"))
        state.put(_update(2, "city", "B"))
        assert len(index) == 1
        assert index.size(("*", "*")) == 3
        assert index.verify()
        state.remove((1, "city"))
        assert index.verify()
        # tuple 1 still holds a zip suggestion in the pseudo-group
        assert index.keys_for_tid(1) == {("*", "*")}


class TestDirtyCursor:
    def test_poll_reports_changed_keys_once(self):
        state = RepairState()
        index = GroupIndex(state)
        state.put(_update(1, "city", "A"))
        cursor = index.dirty_cursor()
        assert index.poll_dirty_keys(cursor) == {("city", "A")}  # starts all-dirty
        assert index.poll_dirty_keys(cursor) == set()
        state.put(_update(2, "city", "A"))
        state.put(_update(3, "zip", "9"))
        assert index.poll_dirty_keys(cursor) == {("city", "A"), ("zip", "9")}
        assert index.poll_dirty_keys(cursor) == set()

    def test_emptied_groups_reported(self):
        state = RepairState()
        index = GroupIndex(state)
        state.put(_update(1, "city", "A"))
        cursor = index.dirty_cursor()
        index.poll_dirty_keys(cursor)
        state.remove((1, "city"))
        assert index.poll_dirty_keys(cursor) == {("city", "A")}
        assert ("city", "A") not in index


class TestRandomisedParity:
    def test_random_mutation_stream_stays_verified(self):
        rng = random.Random(123)
        state = RepairState()
        index = GroupIndex(state)
        live_cells = []
        for step in range(400):
            action = rng.random()
            if action < 0.55 or not live_cells:
                tid = rng.randrange(30)
                attr = rng.choice(["city", "zip", "state"])
                value = rng.choice(["A", "B", "C", 1, "1"])
                state.put(CandidateUpdate(tid, attr, value, round(rng.random(), 3)))
                if (tid, attr) not in live_cells:
                    live_cells.append((tid, attr))
            elif action < 0.8:
                cell = live_cells.pop(rng.randrange(len(live_cells)))
                state.remove(cell)
            elif action < 0.95:
                cell = live_cells.pop(rng.randrange(len(live_cells)))
                state.freeze(cell)
            else:
                state.clear_updates()
                live_cells.clear()
            if step % 50 == 0:
                assert index.verify(), f"diverged at step {step}"
        assert index.verify()


class TestSortKey:
    def test_mixed_types_order_deterministically(self):
        # 1, "1" and 1.0 share str(); the type-aware key separates them
        keys = [("a", "1"), ("a", 1), ("a", 1.0), ("a", "0")]
        ordered = sorted(keys, key=group_sort_key)
        assert ordered[0] == ("a", "0")
        assert sorted(reversed(keys), key=group_sort_key) == ordered
        assert len({group_sort_key(k) for k in keys}) == len(keys)
