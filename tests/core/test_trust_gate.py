"""Tests for the learner-trust machinery (validation window, probes)."""

import pytest

from repro.core import FeedbackLearner
from repro.core.effort import FeedbackBudget
from repro.core.session import InteractiveSession
from repro.db import Schema
from repro.repair import CandidateUpdate, Feedback


@pytest.fixture()
def learner():
    return FeedbackLearner(Schema("r", ["src", "city"]), min_examples=4, seed=0)


class TestValidationWindow:
    def test_no_accuracy_without_records(self, learner):
        assert learner.validation_accuracy("city") is None
        assert not learner.is_trusted("city")

    def test_accuracy_computed(self, learner):
        for correct in (True, True, False, True):
            learner.record_validation("city", correct)
        assert learner.validation_accuracy("city") == pytest.approx(0.75)

    def test_trust_requires_min_samples(self, learner):
        for __ in range(7):
            learner.record_validation("city", True)
        assert not learner.is_trusted("city")  # default needs 8
        learner.record_validation("city", True)
        assert learner.is_trusted("city")

    def test_trust_requires_min_accuracy(self, learner):
        for i in range(20):
            learner.record_validation("city", i % 2 == 0)  # 50% accuracy
        assert not learner.is_trusted("city")

    def test_window_is_rolling(self, learner):
        for __ in range(20):
            learner.record_validation("city", False)
        for __ in range(20):
            learner.record_validation("city", True)
        assert learner.is_trusted("city")

    def test_thresholds_overridable(self, learner):
        for __ in range(3):
            learner.record_validation("city", True)
        assert learner.is_trusted("city", min_samples=3, min_accuracy=0.9)

    def test_per_attribute_isolation(self, learner):
        for __ in range(10):
            learner.record_validation("city", True)
        assert learner.is_trusted("city")
        assert not learner.is_trusted("src")


class TestSessionValidationIntegration:
    """The session must score model predictions against user answers."""

    def _make_session(self, figure1_dirty, figure1_clean, figure1_rules, learner):
        from repro.constraints import ViolationDetector
        from repro.core import GroundTruthOracle
        from repro.repair import ConsistencyManager, RepairState, UpdateGenerator

        detector = ViolationDetector(figure1_dirty, figure1_rules)
        state = RepairState()
        generator = UpdateGenerator(figure1_dirty, figure1_rules, detector, state)
        manager = ConsistencyManager(
            figure1_dirty, figure1_rules, detector, state, generator
        )
        generator.generate_all()
        oracle = GroundTruthOracle(figure1_clean)
        session = InteractiveSession(
            figure1_dirty, state, manager, oracle, learner, batch_size=4, seed=0
        )
        return session, state

    def test_validations_recorded_once_model_ready(
        self, figure1_dirty, figure1_clean, figure1_rules
    ):
        from repro.core import group_updates

        learner = FeedbackLearner(figure1_dirty.schema, min_examples=2, seed=0)
        # pre-train the city model so it predicts from the first label
        for i in range(6):
            update = CandidateUpdate(100 + i, "city", "Somewhere", 0.5)
            label = Feedback.CONFIRM if i % 2 else Feedback.REJECT
            learner.add_example(update, ("x",) * len(figure1_dirty.schema), label)
        learner.retrain("city")
        session, state = self._make_session(
            figure1_dirty, figure1_clean, figure1_rules, learner
        )
        for group in group_updates(state.updates()):
            if group.attribute == "city":
                session.run(group, quota=group.size, budget=FeedbackBudget())
        assert len(learner._validation["city"]) > 0

    def test_cold_model_records_nothing(
        self, figure1_dirty, figure1_clean, figure1_rules
    ):
        from repro.core import group_updates

        learner = FeedbackLearner(figure1_dirty.schema, min_examples=10_000, seed=0)
        session, state = self._make_session(
            figure1_dirty, figure1_clean, figure1_rules, learner
        )
        for group in group_updates(state.updates()):
            session.run(group, quota=group.size, budget=FeedbackBudget())
        for attr in figure1_dirty.schema:
            assert len(learner._validation[attr]) == 0


class TestConfirmGate:
    def test_untrusted_model_cannot_confirm(self):
        """Delegation must skip confirms for untrusted attributes."""
        schema = Schema("r", ["src", "city"])
        learner = FeedbackLearner(schema, min_examples=4, seed=0)
        # train a unanimous-confirm model but never validate it
        for i in range(12):
            update = CandidateUpdate(i, "city", "Fort Wayne", 0.8)
            label = Feedback.CONFIRM if i % 4 else Feedback.REJECT
            learner.add_example(update, ("H2", "FT Wayne"), label)
        learner.retrain("city")
        assert not learner.is_trusted("city")
        # a trusted window flips the gate
        for __ in range(8):
            learner.record_validation("city", True)
        assert learner.is_trusted("city")
