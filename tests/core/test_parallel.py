"""Tests for :mod:`repro.core.parallel` — sharded violation engine.

Byte-parity against the single-process detector is the contract: every
probe outcome and every detect report the sharded engine produces must
equal what the canonical :class:`ViolationDetector` computes.
"""

import numpy as np
import pytest

from repro.constraints.violations import ViolationDetector
from repro.core.parallel import (
    ShardPlan,
    ShardedViolationEngine,
    _shard_mask,
    shard_of_code,
)
from repro.datasets import load_dataset


@pytest.fixture(scope="module")
def substrates():
    return {name: load_dataset(name, n=250, seed=3) for name in ("hospital", "adult")}


def _engine(ds, nshards):
    db = ds.fresh_dirty()
    detector = ViolationDetector(db, ds.rules)
    engine = ShardedViolationEngine(detector, nshards)
    return db, detector, engine


def _probe_cells(db, rng, ncells=25, ncand=3):
    tids = sorted(db.tids())
    attrs = list(db.schema.attributes)
    cells = []
    for _ in range(ncells):
        tid = tids[int(rng.integers(0, len(tids)))]
        attr = attrs[int(rng.integers(0, len(attrs)))]
        pos = db.schema.position(attr)
        dom = db.columns.values_at(pos, np.ones(len(db.columns), dtype=bool))
        values = [dom[int(rng.integers(0, len(dom)))] for _ in range(ncand)]
        values.append("<<never-seen-value>>")
        values.append(db.values_snapshot(tid)[pos])  # identity candidate
        cells.append((tid, attr, values))
    return cells


def _assert_probe_parity(engine, detector, db, rng):
    cells = _probe_cells(db, rng)
    assert engine.what_if_moved_many_cells(cells) == detector.what_if_moved_many_cells(
        cells
    )


class TestShardHash:
    def test_scalar_and_vector_agree(self):
        codes = np.arange(0, 5000, dtype=np.int32)
        for nshards in (2, 3, 4):
            vector = np.zeros(len(codes), dtype=np.int64)
            for shard in range(nshards):
                vector[_shard_mask(codes, shard, nshards)] = shard
            scalar = [shard_of_code(int(c), nshards) for c in codes]
            assert vector.tolist() == scalar

    def test_every_shard_nonempty_on_real_keys(self, substrates):
        ds = substrates["hospital"]
        db, detector, engine = _engine(ds, 3)
        try:
            report = engine.detect()
            assert sum(report["shard_rows"]) == len(db)
            assert all(rows > 0 for rows in report["shard_rows"])
        finally:
            engine.detach()
            detector.detach()


class TestShardPlan:
    def test_hospital_key_and_rule_split(self, substrates):
        ds = substrates["hospital"]
        db = ds.fresh_dirty()
        detector = ViolationDetector(db, ds.rules)
        plan = ShardPlan.build(detector, 3)
        assert plan.key_attr == "hospital"
        # hospital_street / hospital_zip partition by the key -> local;
        # street_city_zip straddles shards -> coordinator
        assert len(plan.local_vids) == 2
        assert len(plan.cross_vids) == 1
        detector.detach()

    def test_adult_key(self, substrates):
        ds = substrates["adult"]
        db = ds.fresh_dirty()
        detector = ViolationDetector(db, ds.rules)
        plan = ShardPlan.build(detector, 2)
        assert plan.key_attr == "relationship"
        detector.detach()


@pytest.mark.parametrize("name,nshards", [("hospital", 3), ("adult", 2)])
class TestProbeAndDetectParity:
    def test_lifecycle_parity(self, name, nshards, substrates):
        ds = substrates[name]
        db, detector, engine = _engine(ds, nshards)
        rng = np.random.default_rng(11)
        try:
            _assert_probe_parity(engine, detector, db, rng)
            assert engine.detect()["parity"] is True

            # writes, including the shard-key column (cross-shard moves)
            tids = sorted(db.tids())
            attrs = list(db.schema.attributes)
            key_attr = engine.plan.key_attr or attrs[0]
            for i in range(20):
                tid = tids[int(rng.integers(0, len(tids)))]
                attr = attrs[int(rng.integers(0, len(attrs)))] if i % 3 else key_attr
                pos = db.schema.position(attr)
                dom = db.columns.values_at(pos, np.ones(len(db.columns), dtype=bool))
                db.set_value(tid, attr, dom[int(rng.integers(0, len(dom)))])
            _assert_probe_parity(engine, detector, db, rng)
            assert engine.detect()["parity"] is True

            # structure changes: grow via inserts, then delete
            template = db.values_snapshot(tids[0])
            for _ in range(30):
                db.insert(dict(zip(db.schema.attributes, template)))
            detector.recompute()
            _assert_probe_parity(engine, detector, db, rng)
            db.delete(sorted(db.tids())[-1])
            detector.recompute()
            _assert_probe_parity(engine, detector, db, rng)
            assert engine.detect()["parity"] is True
        finally:
            engine.detach()
            detector.detach()

    def test_small_batches_stay_canonical(self, name, nshards, substrates):
        ds = substrates[name]
        db, detector, engine = _engine(ds, nshards)
        rng = np.random.default_rng(5)
        try:
            cells = _probe_cells(db, rng, ncells=2)
            before = engine.stats["worker_cells"]
            assert engine.what_if_moved_many_cells(
                cells
            ) == detector.what_if_moved_many_cells(cells)
            assert engine.stats["worker_cells"] == before
            assert engine.stats["canonical_cells"] >= len(cells)
        finally:
            engine.detach()
            detector.detach()


class TestZeroCopy:
    def test_peek_sees_writes_without_resend(self, substrates):
        ds = substrates["hospital"]
        db, detector, engine = _engine(ds, 3)
        try:
            engine.detect()  # prime all workers
            tid = sorted(db.tids())[0]
            attr = db.schema.attributes[0]
            pos = db.schema.position(attr)
            row = db.columns.position_of(tid)
            for shard in range(3):
                assert engine.peek(shard, tid, attr) == db.columns.code_at(row, pos)
            # a direct write lands in the shared pages; the worker sees
            # the new code without any message carrying it
            db.set_value(tid, attr, "<<fresh-shm-value>>")
            assert engine.peek(0, tid, attr) == db.columns.code_at(row, pos)
        finally:
            engine.detach()
            detector.detach()

    def test_health_info_reports_arena(self, substrates):
        ds = substrates["adult"]
        db, detector, engine = _engine(ds, 2)
        try:
            engine.detect()
            info = engine.health_info()
            assert info["pool_size"] == 2
            assert info["key_attr"] == "relationship"
            assert info["arena_generation"] >= 0
            assert info["pool_respawns"] >= 0
            assert info["pending_ops"] == [0, 0]
        finally:
            engine.detach()
            detector.detach()
