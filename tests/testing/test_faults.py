"""Tests for :mod:`repro.testing.faults` (the fault-injection harness)."""

import pytest

from repro.testing import (
    FAULT_POINTS,
    SessionKilled,
    arm,
    armed_points,
    disarm,
    fault_hit,
    fault_scope,
)


@pytest.fixture(autouse=True)
def _clean_schedule():
    """Never leak armed faults between tests."""
    disarm()
    yield
    disarm()


class TestArming:
    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            # the point is deliberately unregistered: arm() must reject it
            arm("no.such.point", action=lambda ctx: None)  # repolint: disable=fault-registry

    def test_bad_at_rejected(self):
        with pytest.raises(ValueError, match="1-based"):
            arm("journal.append", action=lambda ctx: None, at=0)

    def test_bad_every_rejected(self):
        with pytest.raises(ValueError, match="every"):
            arm("journal.append", action=lambda ctx: None, every=0)

    def test_armed_points_listing(self):
        assert armed_points() == []
        arm("journal.append", action=lambda ctx: None)
        arm("drain.decision", action=lambda ctx: None)
        assert armed_points() == ["drain.decision", "journal.append"]
        disarm("drain.decision")
        assert armed_points() == ["journal.append"]
        disarm()
        assert armed_points() == []

    def test_all_registered_points_are_instrumented(self):
        # every declared point appears in production code
        import pathlib

        src = pathlib.Path("src/repro")
        text = "\n".join(p.read_text() for p in src.rglob("*.py"))
        for point in FAULT_POINTS:
            assert f'fault_hit("{point}"' in text


class TestTriggers:
    def test_unarmed_hit_is_noop(self):
        fault_hit("journal.append", seq=1)  # must not raise

    def test_fires_every_hit_by_default(self):
        fired = []
        arm("journal.append", action=fired.append)
        for seq in range(3):
            fault_hit("journal.append", seq=seq)
        assert len(fired) == 3
        assert fired[0]["point"] == "journal.append"
        assert [ctx["hit"] for ctx in fired] == [1, 2, 3]

    def test_at_fires_on_exact_hit_only(self):
        fired = []
        arm("engine.iteration", action=fired.append, at=3)
        for i in range(5):
            fault_hit("engine.iteration", iteration=i)
        assert [ctx["hit"] for ctx in fired] == [3]
        assert fired[0]["iteration"] == 2

    def test_every_fires_periodically(self):
        fired = []
        arm("engine.iteration", action=fired.append, every=2)
        for i in range(6):
            fault_hit("engine.iteration", iteration=i)
        assert [ctx["hit"] for ctx in fired] == [2, 4, 6]

    def test_times_caps_firings(self):
        fired = []
        arm("engine.iteration", action=fired.append, every=1, times=2)
        for i in range(5):
            fault_hit("engine.iteration")
        assert len(fired) == 2

    def test_action_exceptions_propagate(self):
        def kill(ctx):
            raise SessionKilled(f"killed at hit {ctx['hit']}")

        arm("drain.decision", action=kill, at=2)
        fault_hit("drain.decision")
        with pytest.raises(SessionKilled, match="hit 2"):
            fault_hit("drain.decision")

    def test_independent_triggers_on_one_point(self):
        first, second = [], []
        arm("journal.append", action=first.append, at=1)
        arm("journal.append", action=second.append, at=2)
        fault_hit("journal.append")
        fault_hit("journal.append")
        assert len(first) == 1 and len(second) == 1


class TestScope:
    def test_scope_disarms_on_exit(self):
        with fault_scope():
            arm("journal.append", action=lambda ctx: None)
            assert armed_points()
        assert armed_points() == []

    def test_scope_disarms_on_error(self):
        with pytest.raises(SessionKilled):
            with fault_scope():
                arm("journal.append", action=lambda ctx: None)
                raise SessionKilled("boom")
        assert armed_points() == []

    def test_session_killed_is_not_a_repro_error(self):
        from repro.errors import ReproError

        assert not issubclass(SessionKilled, ReproError)
        assert issubclass(SessionKilled, RuntimeError)


class TestRegistry:
    """The machine-readable FAULT_POINT_REGISTRY (repolint fault-registry)."""

    def test_fault_points_accessor(self):
        from repro.testing import FAULT_POINT_REGISTRY, fault_points

        points = fault_points()
        assert set(points) == set(FAULT_POINTS)
        for name, point in points.items():
            assert point.name == name
            assert point.description
            assert point.module.startswith("repro.")
        # a fresh dict per call: mutating one does not corrupt the registry
        points.pop("journal.append")
        assert "journal.append" in fault_points()
        assert FAULT_POINTS == tuple(p.name for p in FAULT_POINT_REGISTRY)

    def test_every_registered_point_is_armable(self):
        def noop(ctx):
            return None

        with fault_scope():
            for name in FAULT_POINTS:
                arm(name, action=noop)
            assert armed_points() == sorted(FAULT_POINTS)
