"""cache-discipline: memos must be stamped, bounded and observable."""

from __future__ import annotations

import textwrap


def _src(body: str) -> str:
    return textwrap.dedent(body)


NAKED = _src(
    """
    class Scorer:
        def __init__(self):
            self._term_memo = {}
    """
)

COMPLIANT = _src(
    """
    _CAPACITY = 1024


    class Scorer:
        def __init__(self, db):
            self._term_memo = {}
            self._version = db.version
            self._hits = 0

        def lookup(self, key):
            if len(self._term_memo) >= _CAPACITY:
                self._term_memo.clear()
            return self._term_memo.get((self._version, key))

        @property
        def stats(self):
            return {"size": len(self._term_memo), "hits": self._hits}
    """
)


class TestPositive:
    def test_naked_memo_reports_all_three_aspects(self, lint):
        findings = lint({"src/repro/core/scorer.py": NAKED}, "cache-discipline")
        messages = [f.message for f in findings]
        assert len(findings) == 3
        assert any("version/epoch/stamp/generation" in m for m in messages)
        assert any("capacity/maxsize" in m for m in messages)
        assert any("`stats`" in m for m in messages)
        assert all(f.symbol == "Scorer" for f in findings)

    def test_cache_named_class_with_dict_state(self, lint):
        code = "class TermCache:\n    def __init__(self):\n        self.data = {}\n"
        findings = lint({"src/repro/repair/c.py": code}, "cache-discipline")
        assert len(findings) == 3

    def test_lru_cache_banned(self, lint):
        code = _src(
            """
            import functools


            @functools.lru_cache(maxsize=None)
            def expensive(x):
                return x * x
            """
        )
        findings = lint({"src/repro/ml/m.py": code}, "cache-discipline")
        assert len(findings) == 1
        assert "process-global memo" in findings[0].message


class TestNegative:
    def test_compliant_memo_passes(self, lint):
        assert lint({"src/repro/core/scorer.py": COMPLIANT}, "cache-discipline") == []

    def test_plain_dict_attributes_are_not_caches(self, lint):
        code = "class Plan:\n    def __init__(self):\n        self.columns = {}\n"
        assert lint({"src/repro/core/plan.py": code}, "cache-discipline") == []

    def test_suppression_on_class_line(self, lint):
        code = (
            "class PureCache:  # repolint: disable=cache-discipline\n"
            "    def __init__(self):\n"
            "        self.data = {}\n"
        )
        assert lint({"src/repro/repair/p.py": code}, "cache-discipline") == []
