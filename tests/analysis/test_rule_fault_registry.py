"""fault-registry: registered ⟺ instrumented ⟺ chaos-tested."""

from __future__ import annotations

import textwrap

FAULTS_REL = "src/repro/testing/faults.py"


def _registry(*points: tuple[str, str]) -> str:
    entries = "".join(
        f'    FaultPoint("{name}", "desc", "{module}"),\n' for name, module in points
    )
    return textwrap.dedent(
        """
        class FaultPoint:
            def __init__(self, name, description, module):
                self.name = name
                self.description = description
                self.module = module


        FAULT_POINT_REGISTRY = (
        {entries})
        """
    ).format(entries=entries)


def _consistent_tree() -> dict[str, str]:
    return {
        FAULTS_REL: _registry(("engine.tick", "repro.core.gdr")),
        "src/repro/core/gdr.py": 'def step():\n    fault_hit("engine.tick", seq=1)\n',
        "tests/core/test_chaos.py": 'def test_kill():\n    arm("engine.tick", at=3)\n',
    }


class TestPositive:
    def test_registered_but_never_fired(self, lint):
        files = _consistent_tree()
        files["src/repro/core/gdr.py"] = "def step():\n    pass\n"
        findings = lint(files, "fault-registry")
        assert any("can never fire" in f.message for f in findings)
        assert any(f.symbol == "engine.tick" for f in findings)

    def test_registered_but_never_armed(self, lint):
        files = _consistent_tree()
        files["tests/core/test_chaos.py"] = "def test_kill():\n    pass\n"
        findings = lint(files, "fault-registry")
        assert len(findings) == 1
        assert "no test arms it" in findings[0].message

    def test_unregistered_hit_and_arm(self, lint):
        files = _consistent_tree()
        files["src/repro/core/gdr.py"] += 'def extra():\n    fault_hit("rogue.point")\n'
        files["tests/core/test_chaos.py"] += 'def test_x():\n    arm("ghost.point")\n'
        findings = lint(files, "fault-registry")
        messages = "\n".join(f.message for f in findings)
        assert "fault_hit('rogue.point'" in messages
        assert "arm('ghost.point'" in messages
        # unregistered call sites anchor at the offending file, not faults.py
        assert any(f.path == "src/repro/core/gdr.py" for f in findings)
        assert any(f.path == "tests/core/test_chaos.py" for f in findings)

    def test_wrong_owning_module(self, lint):
        files = _consistent_tree()
        files[FAULTS_REL] = _registry(("engine.tick", "repro.db.journal"))
        findings = lint(files, "fault-registry")
        assert len(findings) == 1
        assert "owning module" in findings[0].message

    def test_missing_registry(self, lint):
        files = _consistent_tree()
        files[FAULTS_REL] = "FAULT_POINTS = ()\n"
        findings = lint(files, "fault-registry")
        assert any("FAULT_POINT_REGISTRY not found" in f.message for f in findings)


class TestNegative:
    def test_consistent_tree_passes(self, lint):
        assert lint(_consistent_tree(), "fault-registry") == []


class TestRealRepo:
    def test_repo_registry_is_consistent(self, lint, repo_root):
        from repro.analysis.core import RULES
        from repro.analysis.project import Project, run_rules

        project = Project(repo_root)
        assert run_rules(project, [RULES["fault-registry"]]) == []

    def test_deleting_a_registry_entry_fails_lint(self, lint, repo_root):
        """The ISSUE acceptance demo: drop one FaultPoint, lint breaks."""
        from repro.analysis.core import RULES
        from repro.analysis.project import Project, run_rules

        original = (repo_root / FAULTS_REL).read_text(encoding="utf-8")
        start = original.index('    FaultPoint(\n        "shard.dispatch"')
        end = original.index("),", start) + len("),\n")
        edited = original[:start] + original[end:]
        assert edited != original
        project = Project(repo_root, overrides={FAULTS_REL: edited})
        findings = run_rules(project, [RULES["fault-registry"]])
        assert findings, "removing a registry entry must produce findings"
        assert any(
            "shard.dispatch" in f.message and "unregistered" in f.message
            for f in findings
        )
