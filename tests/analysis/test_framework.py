"""Findings, suppressions, the registry and the baseline ratchet."""

from __future__ import annotations

import json

import pytest

from repro.analysis.baseline import Baseline, diff_findings
from repro.analysis.core import RULES, Finding, Rule, Suppressions, register
from repro.analysis.project import Project, run_rules


def _finding(**overrides) -> Finding:
    base = dict(
        rule="determinism",
        path="src/repro/core/x.py",
        line=10,
        message="time.time() in a core path",
        symbol="f",
    )
    base.update(overrides)
    return Finding(**base)


class TestFingerprint:
    def test_line_independent(self):
        assert _finding(line=10).fingerprint() == _finding(line=99).fingerprint()

    def test_sensitive_to_everything_else(self):
        base = _finding().fingerprint()
        assert _finding(rule="parity-coverage").fingerprint() != base
        assert _finding(path="src/repro/core/y.py").fingerprint() != base
        assert _finding(message="other").fingerprint() != base
        assert _finding(symbol="g").fingerprint() != base


class TestRegistry:
    def test_all_six_rules_registered(self):
        assert set(RULES) == {
            "determinism",
            "cache-discipline",
            "fault-registry",
            "parity-coverage",
            "spawn-safety",
            "shm-lifecycle",
        }

    def test_register_rejects_missing_id(self):
        class NoId(Rule):
            pass

        with pytest.raises(ValueError, match="no rule id"):
            register(NoId)

    def test_register_rejects_duplicate_id(self):
        class Dup(Rule):
            id = "determinism"

        with pytest.raises(ValueError, match="duplicate"):
            register(Dup)


class TestSuppressions:
    def test_line_suppression(self):
        sup = Suppressions.parse("x = 1\ny = f()  # repolint: disable=determinism\n")
        assert sup.suppresses(_finding(line=2))
        assert not sup.suppresses(_finding(line=1))

    def test_rule_list_and_trailing_justification(self):
        sup = Suppressions.parse(
            "f()  # repolint: disable=determinism,cache-discipline — pure\n"
        )
        assert sup.suppresses(_finding(line=1))
        assert sup.suppresses(_finding(line=1, rule="cache-discipline"))
        assert not sup.suppresses(_finding(line=1, rule="spawn-safety"))

    def test_file_wide_and_all(self):
        sup = Suppressions.parse("# repolint: disable-file=determinism\n")
        assert sup.suppresses(_finding(line=77))
        sup = Suppressions.parse("f()  # repolint: disable=all\n")
        assert sup.suppresses(_finding(line=1, rule="shm-lifecycle"))

    def test_run_rules_drops_suppressed(self, tmp_path):
        bad = "import time\n\n\ndef f():\n    return time.time()  # repolint: disable=determinism\n"
        project = Project(tmp_path, overrides={"src/repro/core/bad.py": bad})
        assert run_rules(project, [RULES["determinism"]]) == []


class TestBaseline:
    def test_round_trip(self, tmp_path):
        findings = [_finding(), _finding(rule="spawn-safety", message="lambda")]
        path = tmp_path / "baseline.json"
        Baseline.from_findings(findings).save(path)
        loaded = Baseline.load(path)
        assert len(loaded) == 2
        outcome = diff_findings(findings, loaded)
        assert outcome.ok
        assert outcome.new == []
        assert len(outcome.baselined) == 2
        assert outcome.stale == []

    def test_new_finding_fails_stale_reported(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.from_findings([_finding()]).save(path)
        loaded = Baseline.load(path)
        fresh = _finding(message="a brand new breach")
        outcome = diff_findings([fresh], loaded)
        assert not outcome.ok
        assert outcome.new == [fresh]
        # the old entry was fixed: it comes back as stale, not as a pass
        assert len(outcome.stale) == 1
        assert outcome.stale[0]["fingerprint"] == _finding().fingerprint()

    def test_missing_file_is_empty(self, tmp_path):
        assert len(Baseline.load(tmp_path / "nope.json")) == 0

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError, match="version"):
            Baseline.load(path)

    def test_line_drift_does_not_create_new_findings(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.from_findings([_finding(line=10)]).save(path)
        outcome = diff_findings([_finding(line=500)], Baseline.load(path))
        assert outcome.ok
