"""parity-coverage: every mode knob keeps a pinned reference test."""

from __future__ import annotations

import textwrap

GDR_REL = "src/repro/core/gdr.py"

GDR_CONFIG = textwrap.dedent(
    """
    class GDRConfig:
        pipeline: str = "delta"
        drain: str = "batched"
        suggest: str = "kernel"
        learner: str = "hashed"
        shards: int = 0
        seed: int = 0
    """
)

PINNING_TESTS = textwrap.dedent(
    """
    def test_pipeline_parity():
        run(GDRConfig(pipeline="rebuild"))


    def test_drain_parity():
        run(GDRConfig(drain="sequential"))


    def test_suggest_parity():
        run(GDRConfig(suggest="scalar"))


    def test_learner_parity():
        run(GDRConfig(learner="exact"))


    def test_shards_parity():
        run(GDRConfig(shards=0))
    """
)


def _tree() -> dict[str, str]:
    return {GDR_REL: GDR_CONFIG, "tests/core/test_parity.py": PINNING_TESTS}


class TestPositive:
    def test_losing_the_last_pin_fails(self, lint):
        files = _tree()
        files["tests/core/test_parity.py"] = PINNING_TESTS.replace(
            'run(GDRConfig(drain="sequential"))', "pass"
        )
        findings = lint(files, "parity-coverage")
        assert len(findings) == 1
        assert findings[0].symbol == "drain"
        assert "drain='sequential'" in findings[0].message

    def test_dropping_the_knob_from_config_fails(self, lint):
        files = _tree()
        files[GDR_REL] = GDR_CONFIG.replace('    suggest: str = "kernel"\n', "")
        findings = lint(files, "parity-coverage")
        assert len(findings) == 1
        assert findings[0].symbol == "suggest"
        assert "not a GDRConfig field" in findings[0].message

    def test_wrong_reference_value_does_not_count(self, lint):
        files = _tree()
        files["tests/core/test_parity.py"] = PINNING_TESTS.replace(
            'run(GDRConfig(shards=0))', "run(GDRConfig(shards=2))"
        )
        findings = lint(files, "parity-coverage")
        assert len(findings) == 1
        assert findings[0].symbol == "shards"

    def test_bool_false_does_not_pin_shards_zero(self, lint):
        # 0 == False, but shards=False is not the reference spelling
        files = _tree()
        files["tests/core/test_parity.py"] = PINNING_TESTS.replace(
            "run(GDRConfig(shards=0))", "run(GDRConfig(shards=False))"
        )
        findings = lint(files, "parity-coverage")
        assert [f.symbol for f in findings] == ["shards"]

    def test_missing_config_module(self, lint):
        findings = lint(
            {"tests/core/test_parity.py": PINNING_TESTS}, "parity-coverage"
        )
        assert any("missing or unparseable" in f.message for f in findings)


class TestNegative:
    def test_fully_pinned_tree_passes(self, lint):
        assert lint(_tree(), "parity-coverage") == []

    def test_positional_pin_through_local_helper(self, lint):
        # tests/core/test_drain_batched.py threads the reference through
        # a local `_run(drain, ...)` helper positionally; that counts
        files = _tree()
        files["tests/core/test_parity.py"] = PINNING_TESTS.replace(
            'run(GDRConfig(drain="sequential"))', "pass"
        ) + textwrap.dedent(
            """

            def _run(drain, preset):
                return run(GDRConfig(drain=drain))


            def test_drain_parity_positional():
                _run("sequential", "figure1")
            """
        )
        assert lint(files, "parity-coverage") == []


class TestRealRepo:
    def test_repo_pins_every_reference(self, repo_root):
        from repro.analysis.core import RULES
        from repro.analysis.project import Project, run_rules

        project = Project(repo_root)
        assert run_rules(project, [RULES["parity-coverage"]]) == []

    def test_removing_a_parity_test_fails_lint(self, repo_root):
        """The ISSUE acceptance demo: delete the suggest parity test."""
        from repro.analysis.core import RULES
        from repro.analysis.project import Project, run_rules

        project = Project(
            repo_root, excludes=("tests/core/test_gdr_suggest.py",)
        )
        findings = run_rules(project, [RULES["parity-coverage"]])
        assert any(f.symbol == "suggest" for f in findings)
