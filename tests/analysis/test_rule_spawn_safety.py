"""spawn-safety: module-level targets, function-free payloads."""

from __future__ import annotations

import textwrap


def _src(body: str) -> str:
    return textwrap.dedent(body)


class TestPositive:
    def test_lambda_target(self, lint):
        code = _src(
            """
            import multiprocessing


            def start(ctx):
                return ctx.Process(target=lambda: None)
            """
        )
        findings = lint({"src/repro/core/p.py": code}, "spawn-safety")
        assert len(findings) == 1
        assert "lambda" in findings[0].message

    def test_bound_method_target(self, lint):
        code = _src(
            """
            class Pool:
                def start(self, ctx):
                    return ctx.Process(target=self.serve)
            """
        )
        findings = lint({"src/repro/core/p.py": code}, "spawn-safety")
        assert len(findings) == 1
        assert "bound method" in findings[0].message

    def test_nested_def_target(self, lint):
        code = _src(
            """
            def start(ctx):
                def serve():
                    pass

                return ctx.Process(target=serve)
            """
        )
        findings = lint({"src/repro/core/p.py": code}, "spawn-safety")
        assert len(findings) == 1
        assert "nested function" in findings[0].message

    def test_lambda_in_dispatch_payload(self, lint):
        code = _src(
            """
            def probe(conn):
                conn.send({"cmd": "probe", "hook": lambda row: row})
            """
        )
        findings = lint({"src/repro/core/p.py": code}, "spawn-safety")
        assert len(findings) == 1
        assert "picklable" in findings[0].message


class TestNegative:
    def test_module_level_target_passes(self, lint):
        code = _src(
            """
            def _worker_main(conn, shard):
                pass


            def start(ctx, conn, shard):
                return ctx.Process(target=_worker_main, args=(conn, shard))
            """
        )
        assert lint({"src/repro/core/p.py": code}, "spawn-safety") == []

    def test_plain_data_payload_passes(self, lint):
        code = 'def probe(conn):\n    conn.send({"cmd": "probe", "rows": [1, 2]})\n'
        assert lint({"src/repro/core/p.py": code}, "spawn-safety") == []

    def test_tests_are_out_of_scope(self, lint):
        code = "def t(ctx):\n    return ctx.Process(target=lambda: None)\n"
        assert lint({"tests/core/test_p.py": code}, "spawn-safety") == []
