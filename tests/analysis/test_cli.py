"""``python -m repro.analysis``: exit codes, reports, baseline ratchet."""

from __future__ import annotations

import io
import json
from pathlib import Path

from repro.analysis.cli import main

BAD_CORE = "import time\n\n\ndef f():\n    return time.time()\n"


def _mini_repo(tmp_path: Path) -> Path:
    root = tmp_path / "repo"
    (root / "src" / "repro" / "core").mkdir(parents=True)
    (root / "src" / "repro" / "core" / "clock.py").write_text(BAD_CORE)
    return root


def _run(*argv: str) -> tuple[int, str]:
    out = io.StringIO()
    code = main(list(argv), stdout=out)
    return code, out.getvalue()


class TestExitCodes:
    def test_new_finding_exits_1(self, tmp_path):
        root = _mini_repo(tmp_path)
        code, text = _run("--root", str(root), "--rules", "determinism")
        assert code == 1
        assert "[determinism]" in text
        assert "repolint FAIL" in text

    def test_unknown_rule_exits_2(self, tmp_path):
        code, text = _run("--root", str(tmp_path), "--rules", "nope")
        assert code == 2
        assert "unknown rule id" in text

    def test_empty_tree_exits_0(self, tmp_path):
        code, text = _run("--root", str(tmp_path), "--rules", "determinism")
        assert code == 0
        assert "repolint OK" in text

    def test_missing_modules_fail_project_rules(self, tmp_path):
        # a tree without gdr.py/faults.py breaches the cross-file contracts
        root = _mini_repo(tmp_path)
        code, text = _run("--root", str(root))
        assert code == 1
        assert "[parity-coverage]" in text
        assert "[fault-registry]" in text


class TestBaselineRatchet:
    def test_write_then_pass_then_stale(self, tmp_path):
        root = _mini_repo(tmp_path)
        # grandfather the finding
        code, text = _run("--root", str(root), "--rules", "determinism", "--write-baseline")
        assert code == 0
        assert "wrote 1 finding(s)" in text
        baseline = json.loads((root / "repolint-baseline.json").read_text())
        assert len(baseline["findings"]) == 1
        # baselined finding no longer fails the gate
        code, text = _run("--root", str(root), "--rules", "determinism")
        assert code == 0
        assert "1 baselined" in text
        # fixing it leaves a stale entry, reported but still passing
        (root / "src" / "repro" / "core" / "clock.py").write_text(
            "def f():\n    return 0\n"
        )
        code, text = _run("--root", str(root), "--rules", "determinism")
        assert code == 0
        assert "stale" in text
        # --no-baseline reopens every finding
        (root / "src" / "repro" / "core" / "clock.py").write_text(BAD_CORE)
        code, __ = _run("--root", str(root), "--rules", "determinism", "--no-baseline")
        assert code == 1


class TestReports:
    def test_json_report_and_artifact(self, tmp_path):
        root = _mini_repo(tmp_path)
        artifact = tmp_path / "repolint.json"
        code, text = _run(
            "--root", str(root), "--rules", "determinism", "--json", "-o", str(artifact)
        )
        assert code == 1
        payload = json.loads(text)
        assert payload["summary"]["ok"] is False
        assert payload["summary"]["new"] == 1
        assert payload["new_findings"][0]["rule"] == "determinism"
        assert payload["new_findings"][0]["fingerprint"]
        assert json.loads(artifact.read_text()) == payload

    def test_list_rules(self, tmp_path):
        code, text = _run("--list-rules")
        assert code == 0
        for rule_id in (
            "determinism",
            "cache-discipline",
            "fault-registry",
            "parity-coverage",
            "spawn-safety",
            "shm-lifecycle",
        ):
            assert rule_id in text

    def test_rule_subset_runs_only_selected(self, tmp_path):
        root = _mini_repo(tmp_path)
        code, __ = _run("--root", str(root), "--rules", "shm-lifecycle")
        assert code == 0  # the determinism breach is out of the subset


class TestRepoIsClean:
    def test_head_lints_clean_against_committed_baseline(self, repo_root):
        """The gate CI enforces: the tree at HEAD has no new findings."""
        code, text = _run("--root", str(repo_root))
        assert code == 0, text

    def test_committed_baseline_is_tight(self, repo_root):
        """The ratchet stays honest: at most 10 grandfathered entries."""
        data = json.loads((repo_root / "repolint-baseline.json").read_text())
        assert len(data["findings"]) <= 10
