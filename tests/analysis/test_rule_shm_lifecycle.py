"""shm-lifecycle: every acquisition carries an explicit release path."""

from __future__ import annotations

import textwrap


def _src(body: str) -> str:
    return textwrap.dedent(body)


class TestPositive:
    def test_bare_acquisition_flagged(self, lint):
        code = _src(
            """
            from multiprocessing.shared_memory import SharedMemory


            def attach(name):
                shm = SharedMemory(name=name)
                data = shm.buf[:8]
                return data
            """
        )
        findings = lint({"src/repro/db/s.py": code}, "shm-lifecycle")
        assert len(findings) == 1
        assert "no failure-path release" in findings[0].message
        assert findings[0].symbol == "attach"

    def test_self_storage_without_release_method(self, lint):
        code = _src(
            """
            class Worker:
                def attach(self, desc):
                    self.shm = attach_matrix(desc)
            """
        )
        findings = lint({"src/repro/core/w.py": code}, "shm-lifecycle")
        assert len(findings) == 1
        assert "no release method" in findings[0].message

    def test_try_without_release_is_not_enough(self, lint):
        code = _src(
            """
            from multiprocessing.shared_memory import SharedMemory


            def attach(name):
                shm = SharedMemory(name=name)
                try:
                    view = shm.buf[:8]
                except ValueError:
                    view = None
                return shm, view
            """
        )
        findings = lint({"src/repro/db/s.py": code}, "shm-lifecycle")
        assert len(findings) == 1


class TestNegative:
    def test_guarded_release_passes(self, lint):
        code = _src(
            """
            from multiprocessing.shared_memory import SharedMemory


            def attach(name):
                shm = SharedMemory(name=name)
                try:
                    view = shm.buf[:8]
                except BaseException:
                    shm.close()
                    raise
                return shm, view
            """
        )
        assert lint({"src/repro/db/s.py": code}, "shm-lifecycle") == []

    def test_with_block_passes(self, lint):
        code = _src(
            """
            from multiprocessing.shared_memory import SharedMemory


            def peek(name):
                with SharedMemory(name=name) as shm:
                    return bytes(shm.buf[:8])
            """
        )
        assert lint({"src/repro/db/s.py": code}, "shm-lifecycle") == []

    def test_pure_factory_return_passes(self, lint):
        code = _src(
            """
            from multiprocessing.shared_memory import SharedMemory


            def open_segment(name):
                return SharedMemory(name=name)
            """
        )
        assert lint({"src/repro/db/s.py": code}, "shm-lifecycle") == []

    def test_self_storage_with_release_method_passes(self, lint):
        code = _src(
            """
            class Worker:
                def attach(self, desc):
                    self.shm = attach_matrix(desc)

                def close(self):
                    if self.shm is not None:
                        self.shm.close()
            """
        )
        assert lint({"src/repro/core/w.py": code}, "shm-lifecycle") == []

    def test_out_of_scope_paths_ignored(self, lint):
        code = "def f(name):\n    shm = SharedMemory(name=name)\n    return shm, 1\n"
        assert lint({"tests/db/test_s.py": code}, "shm-lifecycle") == []
