"""determinism: wall clocks and unseeded RNG in replay-contract packages."""

from __future__ import annotations

import textwrap


def _src(body: str) -> str:
    return textwrap.dedent(body)


BAD = _src(
    """
    import os
    import random
    import time
    import numpy as np


    def decide():
        stamp = time.time()
        noise = random.random()
        rng = np.random.default_rng()
        salt = os.urandom(8)
        return stamp, noise, rng, salt
    """
)

GOOD = _src(
    """
    import random
    import time
    import numpy as np


    def decide(seed):
        started = time.perf_counter()
        rng = np.random.default_rng(seed)
        local = random.Random(seed)
        return started, rng.integers(10), local.random()
    """
)


class TestPositive:
    def test_seeded_violations_caught(self, lint):
        findings = lint({"src/repro/core/decider.py": BAD}, "determinism")
        messages = "\n".join(f.message for f in findings)
        assert len(findings) == 4
        assert "time.time()" in messages
        assert "random.random()" in messages
        assert "numpy.random.default_rng() without a seed" in messages
        assert "os.urandom()" in messages
        # findings carry the enclosing symbol for stable fingerprints
        assert all(f.symbol == "decide" for f in findings)

    def test_module_global_numpy_rng(self, lint):
        code = "import numpy as np\n\n\ndef f():\n    return np.random.shuffle([1])\n"
        findings = lint({"src/repro/repair/f.py": code}, "determinism")
        assert len(findings) == 1
        assert "module-global numpy RNG" in findings[0].message

    def test_import_alias_resolved(self, lint):
        code = "from time import time as now\n\n\ndef f():\n    return now()\n"
        findings = lint({"src/repro/ml/f.py": code}, "determinism")
        assert len(findings) == 1


class TestNegative:
    def test_seeded_and_telemetry_calls_pass(self, lint):
        assert lint({"src/repro/constraints/ok.py": GOOD}, "determinism") == []

    def test_outside_core_prefixes_ignored(self, lint):
        # experiments/ and testing/ may use wall clocks freely
        assert lint({"src/repro/experiments/bench.py": BAD}, "determinism") == []
        assert lint({"tests/core/test_x.py": BAD}, "determinism") == []

    def test_unrelated_callable_named_time_passes(self, lint):
        code = "def time():\n    return 0\n\n\ndef f():\n    return time()\n"
        assert lint({"src/repro/core/t.py": code}, "determinism") == []
