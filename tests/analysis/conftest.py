"""Shared helpers for the repolint test suite.

Rules are exercised against synthetic trees: a :class:`Project` rooted
in an empty temp directory whose whole file set comes from *overrides*.
That keeps every positive/negative fixture self-contained and lets the
contract-removal tests lint a hypothetical edit of the real repository
without touching disk.
"""

from __future__ import annotations

import pytest

from repro.analysis.core import RULES, all_rules
from repro.analysis.project import Project, find_repo_root, run_rules

all_rules()  # populate the registry once for the whole suite


@pytest.fixture
def lint(tmp_path):
    """``lint({rel: text}, rule_id)`` -> findings over a synthetic tree."""

    def run(files: dict[str, str], rule_id: str):
        project = Project(tmp_path, overrides=files)
        return run_rules(project, [RULES[rule_id]])

    return run


@pytest.fixture(scope="session")
def repo_root():
    return find_repo_root()
