"""Tests for :mod:`repro.datasets.corruption`."""

import numpy as np
import pytest

from repro.constraints import RuleSet, parse_rules
from repro.datasets import CorruptionSpec, corrupt_database, perturb_string
from repro.db import Database, Schema
from repro.errors import ConfigError


@pytest.fixture()
def clean():
    schema = Schema("r", ["zip", "city"])
    rows = [["46360", "Michigan City"]] * 10 + [["46825", "Fort Wayne"]] * 10
    return Database(schema, rows)


class TestPerturbString:
    def test_always_different(self):
        rng = np.random.default_rng(0)
        for value in ("abc", "x", "", "46360", "Fort Wayne"):
            for __ in range(20):
                assert perturb_string(value, rng) != str(value)

    def test_digits_stay_digits_on_replace(self):
        rng = np.random.default_rng(1)
        results = {perturb_string("12345", rng) for __ in range(50)}
        assert all(r != "12345" for r in results)

    def test_returns_string(self):
        rng = np.random.default_rng(2)
        assert isinstance(perturb_string(42, rng), str)


class TestCorruptionSpecValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [{"rate": 1.5}, {"rate": -0.1}, {"max_attrs_per_tuple": 0}, {"char_error_prob": 2.0}],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            CorruptionSpec(**kwargs)


class TestCorruptDatabase:
    def test_rate_controls_dirty_count(self, clean):
        dirty, result = corrupt_database(clean, CorruptionSpec(rate=0.5), seed=0)
        assert len(result.dirty_tuples) == 10

    def test_zero_rate(self, clean):
        dirty, result = corrupt_database(clean, CorruptionSpec(rate=0.0), seed=0)
        assert result.dirty_tuples == set()
        assert dirty.equals_data(clean)

    def test_clean_instance_untouched(self, clean):
        snapshot = clean.snapshot()
        corrupt_database(clean, CorruptionSpec(rate=0.5), seed=0)
        assert clean.equals_data(snapshot)

    def test_corrupted_cells_differ_from_clean(self, clean):
        dirty, result = corrupt_database(clean, CorruptionSpec(rate=0.5), seed=0)
        for tid, attr in result.corrupted_cells:
            assert dirty.value(tid, attr) != clean.value(tid, attr)

    def test_deterministic_given_seed(self, clean):
        a, ra = corrupt_database(clean, CorruptionSpec(rate=0.3), seed=7)
        b, rb = corrupt_database(clean, CorruptionSpec(rate=0.3), seed=7)
        assert a.equals_data(b)
        assert ra.dirty_tuples == rb.dirty_tuples

    def test_different_seeds_differ(self, clean):
        a, __ = corrupt_database(clean, CorruptionSpec(rate=0.3), seed=1)
        b, __ = corrupt_database(clean, CorruptionSpec(rate=0.3), seed=2)
        assert not a.equals_data(b)

    def test_attribute_restriction(self, clean):
        spec = CorruptionSpec(rate=0.5, attributes=("city",))
        dirty, result = corrupt_database(clean, spec, seed=0)
        assert all(attr == "city" for __, attr in result.corrupted_cells)

    def test_max_attrs_per_tuple(self, clean):
        spec = CorruptionSpec(rate=1.0, max_attrs_per_tuple=1)
        __, result = corrupt_database(clean, spec, seed=0)
        from collections import Counter

        per_tuple = Counter(tid for tid, __a in result.corrupted_cells)
        assert max(per_tuple.values()) == 1


class TestDetectability:
    def test_requires_rules(self, clean):
        with pytest.raises(ConfigError):
            corrupt_database(clean, CorruptionSpec(ensure_detectable=True), seed=0)

    def test_all_kept_errors_are_detectable(self, clean):
        rules = RuleSet(
            parse_rules(
                """
                (zip -> city, {46360 || 'Michigan City'})
                (zip -> city, {46825 || 'Fort Wayne'})
                """
            )
        )
        spec = CorruptionSpec(rate=0.5, attributes=("city",), ensure_detectable=True)
        dirty, result = corrupt_database(clean, spec, seed=0, rules=rules)
        from repro.constraints import ViolationDetector

        detector = ViolationDetector(dirty, rules)
        for tid in result.dirty_tuples:
            assert detector.is_dirty(tid)


class TestSystematicErrors:
    def test_hook_controls_values(self, clean):
        def hook(row, attr, rng):
            if attr == "city":
                return "PLANTED"
            return None

        spec = CorruptionSpec(
            rate=1.0, attributes=("city",), systematic=hook, systematic_prob=1.0
        )
        dirty, result = corrupt_database(clean, spec, seed=0)
        planted = [dirty.value(t, "city") for t, __ in result.corrupted_cells]
        assert all(v == "PLANTED" for v in planted)

    def test_hook_fallback_on_none(self, clean):
        spec = CorruptionSpec(
            rate=1.0,
            attributes=("city",),
            systematic=lambda row, attr, rng: None,
            systematic_prob=1.0,
        )
        dirty, result = corrupt_database(clean, spec, seed=0)
        assert len(result.dirty_tuples) == 20  # random fallback still fires

    def test_tuple_weight_biases_selection(self, clean):
        # weight only the Fort Wayne half
        spec = CorruptionSpec(
            rate=0.5,
            tuple_weight=lambda row: 100.0 if row["city"] == "Fort Wayne" else 0.001,
        )
        __, result = corrupt_database(clean, spec, seed=0)
        assert all(tid >= 10 for tid in result.dirty_tuples)

    def test_attribute_picker(self, clean):
        spec = CorruptionSpec(
            rate=1.0,
            attributes=("zip", "city"),
            attribute_picker=lambda row: ("zip",),
        )
        __, result = corrupt_database(clean, spec, seed=0)
        assert all(attr == "zip" for __t, attr in result.corrupted_cells)
