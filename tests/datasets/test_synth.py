"""Tests for :mod:`repro.datasets.synth`."""

import pytest

from repro.constraints.violations import ViolationDetector
from repro.datasets import load_dataset, load_synth_dataset, scale_dataset
from repro.errors import DatasetError


def _rows(db):
    return [tuple(row.values) for row in db.rows()]


def _violation_profile(ds):
    detector = ViolationDetector(ds.dirty, ds.rules)
    profile = (
        len(detector.dirty_tuples()),
        tuple(sorted((state.rule.name, len(state.violating)) for state in detector._states)),
    )
    detector.detach()
    return profile


class TestScaleDataset:
    def test_round_trips_at_base_size(self):
        base = load_dataset("hospital", n=200, seed=7)
        ds = scale_dataset(base, 200)
        assert ds.name == "hospital-synth"
        assert _rows(ds.dirty) == _rows(base.dirty)
        assert _rows(ds.clean) == _rows(base.clean)
        assert ds.corruption.dirty_tuples == base.corruption.dirty_tuples

    @pytest.mark.parametrize("name", ["hospital", "adult"])
    def test_deterministic(self, name):
        a = load_synth_dataset(name, n=600, base_n=200, seed=5)
        b = load_synth_dataset(name, n=600, base_n=200, seed=5)
        assert _rows(a.dirty) == _rows(b.dirty)
        assert _rows(a.clean) == _rows(b.clean)
        assert a.corruption.dirty_tuples == b.corruption.dirty_tuples
        assert a.corruption.corrupted_cells == b.corruption.corrupted_cells

    def test_hospital_violations_scale_linearly(self):
        # Re-keying keeps every variable-rule partition block-local, so
        # a 3x replica has exactly 3x the dirty tuples and 3x each
        # rule's violating set.
        base = load_dataset("hospital", n=300, seed=7)
        base_dirty, base_per_rule = _violation_profile(base)
        synth = scale_dataset(base, 900)
        synth_dirty, synth_per_rule = _violation_profile(synth)
        assert synth_dirty == 3 * base_dirty
        assert synth_per_rule == tuple(
            (name, 3 * count) for name, count in base_per_rule
        )

    def test_adult_replicates_verbatim(self):
        base = load_dataset("adult", n=150, seed=5)
        synth = scale_dataset(base, 450)
        rows = _rows(synth.dirty)
        assert rows[:150] == _rows(base.dirty)
        assert rows[150:300] == rows[:150]
        # A replica violates exactly when its original does (merging
        # identical partitions never flips consistency), so the
        # detector's dirty count scales linearly here too.
        base_dirty, _ = _violation_profile(base)
        synth_dirty, _ = _violation_profile(synth)
        assert synth_dirty == 3 * base_dirty

    def test_truncated_final_block(self):
        base = load_dataset("hospital", n=200, seed=7)
        ds = scale_dataset(base, 450)
        assert len(ds.dirty) == 450
        assert len(ds.clean) == 450
        assert max(ds.corruption.dirty_tuples) < 450
        assert all(tid < 450 for tid, _ in ds.corruption.corrupted_cells)

    def test_provenance_rebased_per_block(self):
        base = load_dataset("hospital", n=200, seed=7)
        ds = scale_dataset(base, 600)
        expected = {
            block * 200 + tid
            for block in range(3)
            for tid in base.corruption.dirty_tuples
        }
        assert ds.corruption.dirty_tuples == expected

    def test_rekeyed_ground_truth_matches_blocks(self):
        base = load_dataset("hospital", n=200, seed=7)
        ds = scale_dataset(base, 400)
        pos = base.dirty.schema.position("hospital")
        block0 = _rows(ds.clean)[:200]
        block1 = _rows(ds.clean)[200:]
        for row0, row1 in zip(block0, block1):
            assert row1[pos] == f"{row0[pos]}~1"

    def test_rejects_bad_sizes_and_names(self):
        base = load_dataset("hospital", n=100, seed=0)
        with pytest.raises(DatasetError):
            scale_dataset(base, 0)
        base.name = "mystery"
        with pytest.raises(DatasetError):
            scale_dataset(base, 200)
