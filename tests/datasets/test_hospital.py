"""Tests for :mod:`repro.datasets.hospital` (Dataset 1 analogue)."""

import pytest

from repro.constraints import ViolationDetector
from repro.datasets import HOSPITAL_SCHEMA, HospitalConfig, generate_hospital_dataset
from repro.datasets.hospital import hospital_rules


@pytest.fixture(scope="module")
def dataset():
    return generate_hospital_dataset(HospitalConfig(n=400, seed=5))


class TestGeneration:
    def test_sizes(self, dataset):
        dirty, clean, rules, report = dataset
        assert len(dirty) == len(clean) == 400

    def test_schema(self, dataset):
        dirty, *__ = dataset
        assert dirty.schema == HOSPITAL_SCHEMA
        assert "hospital" in dirty.schema
        assert "zip" in dirty.schema

    def test_clean_instance_is_consistent(self, dataset):
        __, clean, rules, __r = dataset
        detector = ViolationDetector(clean, rules)
        assert detector.vio_total() == 0

    def test_dirty_rate_approximate(self, dataset):
        __, __c, __r, report = dataset
        assert 0.25 <= len(report.dirty_tuples) / 400 <= 0.31

    def test_all_errors_detectable(self, dataset):
        dirty, __, rules, report = dataset
        detector = ViolationDetector(dirty, rules)
        for tid in report.dirty_tuples:
            assert detector.is_dirty(tid)

    def test_deterministic(self):
        a, *_ = generate_hospital_dataset(HospitalConfig(n=100, seed=9))
        b, *_ = generate_hospital_dataset(HospitalConfig(n=100, seed=9))
        assert a.equals_data(b)

    def test_seeds_differ(self):
        a, *_ = generate_hospital_dataset(HospitalConfig(n=100, seed=1))
        b, *_ = generate_hospital_dataset(HospitalConfig(n=100, seed=2))
        assert not a.equals_data(b)

    def test_hospitals_have_consistent_addresses(self, dataset):
        __, clean, *_ = dataset
        addresses = {}
        for row in clean.rows():
            hospital = row["hospital"]
            address = (row["street"], row["city"], row["zip"], row["state"])
            assert addresses.setdefault(hospital, address) == address

    def test_errors_correlate_with_source(self, dataset):
        """Sloppy sources must carry a disproportionate error share."""
        dirty, clean, __, report = dataset
        from collections import Counter

        errors_by_hospital = Counter(
            clean.value(tid, "hospital") for tid in report.dirty_tuples
        )
        totals = Counter(row["hospital"] for row in clean.rows())
        rates = {
            h: errors_by_hospital.get(h, 0) / totals[h]
            for h in totals
            if totals[h] >= 5
        }
        assert max(rates.values()) > 3 * (min(rates.values()) + 0.01)


class TestHospitalRules:
    def test_full_coverage_rule_count(self):
        rules = hospital_rules(rule_coverage=1.0)
        constants = [r for r in rules if r.is_constant]
        assert len(constants) == 2 * 26  # city + state per geography zip

    def test_partial_coverage_reduces_rules(self):
        full = hospital_rules(rule_coverage=1.0)
        partial = hospital_rules(rule_coverage=0.5)
        assert len(partial) < len(full)

    def test_variable_rules_present(self):
        rules = hospital_rules()
        variable_names = {r.name for r in rules if r.is_variable}
        assert "street_city_zip" in variable_names
        assert "hospital_street" in variable_names
        assert "hospital_zip" in variable_names

    def test_rules_validate_against_schema(self):
        for rule in hospital_rules():
            rule.validate_schema(HOSPITAL_SCHEMA)
