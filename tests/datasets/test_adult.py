"""Tests for :mod:`repro.datasets.adult` (Dataset 2 analogue)."""

import pytest

from repro.constraints import ViolationDetector
from repro.datasets import ADULT_SCHEMA, AdultConfig, generate_adult_dataset


@pytest.fixture(scope="module")
def dataset():
    return generate_adult_dataset(AdultConfig(n=600, seed=5))


class TestGeneration:
    def test_sizes_and_schema(self, dataset):
        dirty, clean, rules, report = dataset
        assert len(dirty) == len(clean) == 600
        assert dirty.schema == ADULT_SCHEMA
        assert len(ADULT_SCHEMA) == 10  # the paper's attribute selection

    def test_relationship_fd_holds_in_clean_data(self, dataset):
        __, clean, *_ = dataset
        seen = {}
        for row in clean.rows():
            rel = row["relationship"]
            assert seen.setdefault(rel, row["marital_status"]) == row["marital_status"]

    def test_husband_is_male_wife_is_female(self, dataset):
        __, clean, *_ = dataset
        for row in clean.rows():
            if row["relationship"] == "Husband":
                assert row["sex"] == "Male"
            if row["relationship"] == "Wife":
                assert row["sex"] == "Female"

    def test_dirty_rate(self, dataset):
        *__, report = dataset
        assert 0.2 <= len(report.dirty_tuples) / 600 <= 0.31

    def test_deterministic(self):
        a, *_ = generate_adult_dataset(AdultConfig(n=150, seed=3))
        b, *_ = generate_adult_dataset(AdultConfig(n=150, seed=3))
        assert a.equals_data(b)


class TestDiscoveredRules:
    def test_rules_discovered(self, dataset):
        *__, rules, __r = dataset[2], dataset[3]
        rules = dataset[2]
        assert len(rules) > 0

    def test_relationship_rules_found(self, dataset):
        rules = dataset[2]
        rhs_attrs = {r.rhs for r in rules}
        assert "marital_status" in rhs_attrs or "sex" in rhs_attrs

    def test_no_spurious_country_rules(self, dataset):
        """The skewed native_country marginal must not yield rules."""
        rules = dataset[2]
        for rule in rules:
            if rule.is_constant and rule.rhs == "native_country":
                pytest.fail(f"spurious rule discovered: {rule!r}")

    def test_detectable_errors_violate_rules(self, dataset):
        dirty, __, rules, report = dataset
        detector = ViolationDetector(dirty, rules)
        detectable = sum(1 for tid in report.dirty_tuples if detector.is_dirty(tid))
        assert detectable == len(report.dirty_tuples)

    def test_rules_validate_against_schema(self, dataset):
        for rule in dataset[2]:
            rule.validate_schema(ADULT_SCHEMA)
