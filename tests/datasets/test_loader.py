"""Tests for :mod:`repro.datasets.loader`."""

import pytest

from repro.datasets import DATASET_NAMES, load_dataset
from repro.errors import ConfigError


class TestLoadDataset:
    def test_names(self):
        assert set(DATASET_NAMES) == {"hospital", "adult"}

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_loads(self, name):
        ds = load_dataset(name, n=150, seed=0)
        assert ds.name == name
        assert len(ds.dirty) == 150
        assert len(ds.clean) == 150
        assert len(ds.rules) > 0
        assert ds.dirty_tuple_count > 0

    def test_unknown_name(self):
        with pytest.raises(ConfigError):
            load_dataset("nope")

    def test_fresh_dirty_is_independent(self):
        ds = load_dataset("hospital", n=100, seed=0)
        copy = ds.fresh_dirty()
        copy.set_value(0, "city", "Mutation")
        assert ds.dirty.value(0, "city") != "Mutation" or True
        assert not copy.equals_data(ds.dirty) or ds.dirty.value(0, "city") == "Mutation"
        # the original dirty instance must be unchanged
        assert ds.dirty.value(0, "city") != "Mutation"

    def test_describe(self):
        ds = load_dataset("adult", n=100, seed=0)
        text = ds.describe()
        assert "adult" in text and "100 tuples" in text

    def test_overrides_forwarded(self):
        ds = load_dataset("hospital", n=100, seed=0, n_hospitals=10)
        hospitals = {row["hospital"] for row in ds.clean.rows()}
        assert len(hospitals) <= 10

    def test_dirty_and_clean_differ(self):
        ds = load_dataset("hospital", n=150, seed=0)
        assert not ds.dirty.equals_data(ds.clean)
