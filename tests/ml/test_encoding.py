"""Tests for :mod:`repro.ml.encoding`."""

import numpy as np
import pytest

from repro.db import Schema
from repro.ml import (
    FEEDBACK_CLASSES,
    CategoricalEncoder,
    UpdateExampleEncoder,
    feedback_to_class,
)
from repro.repair import Feedback


class TestCategoricalEncoder:
    def test_codes_start_at_zero_and_grow(self):
        enc = CategoricalEncoder()
        assert enc.encode("a") == 0
        assert enc.encode("b") == 1
        assert enc.encode("a") == 0
        assert len(enc) == 2

    def test_decode_inverse(self):
        enc = CategoricalEncoder()
        enc.encode("x")
        enc.encode("y")
        assert enc.decode(1) == "y"

    def test_contains(self):
        enc = CategoricalEncoder()
        enc.encode("x")
        assert "x" in enc and "y" not in enc

    def test_mixed_types(self):
        enc = CategoricalEncoder()
        assert enc.encode(42) != enc.encode("42")


class TestFeedbackClasses:
    def test_fixed_ordering(self):
        assert FEEDBACK_CLASSES == (Feedback.CONFIRM, Feedback.REJECT, Feedback.RETAIN)

    def test_feedback_to_class(self):
        assert feedback_to_class(Feedback.CONFIRM) == 0
        assert feedback_to_class(Feedback.REJECT) == 1
        assert feedback_to_class(Feedback.RETAIN) == 2


class TestUpdateExampleEncoder:
    @pytest.fixture()
    def encoder(self):
        return UpdateExampleEncoder(Schema("r", ["a", "b", "c"]))

    def test_feature_width(self, encoder):
        assert encoder.n_features == 5  # 3 attrs + suggested value + similarity

    def test_encode_shape_and_dtype(self, encoder):
        features = encoder.encode(("x", "y", "z"), "b", "w")
        assert features.shape == (5,)
        assert features.dtype == np.float64

    def test_similarity_feature_for_identical_value(self, encoder):
        features = encoder.encode(("x", "y", "z"), "b", "y")
        assert features[-1] == 1.0

    def test_similarity_feature_for_different_value(self, encoder):
        features = encoder.encode(("x", "y", "z"), "b", "completely-different")
        assert 0.0 <= features[-1] < 1.0

    def test_same_example_same_features(self, encoder):
        one = encoder.encode(("x", "y", "z"), "a", "v")
        two = encoder.encode(("x", "y", "z"), "a", "v")
        assert np.array_equal(one, two)

    def test_suggested_value_shares_attribute_vocabulary(self, encoder):
        # encode a row where attribute 'a' holds "v", then suggest "v":
        # the suggestion column must reuse the same code
        features = encoder.encode(("v", "y", "z"), "a", "v")
        assert features[0] == features[3]

    def test_unseen_values_never_fail(self, encoder):
        for i in range(50):
            encoder.encode((f"x{i}", f"y{i}", f"z{i}"), "c", f"new{i}")

    def test_encoder_for(self, encoder):
        encoder.encode(("x", "y", "z"), "a", "v")
        assert "x" in encoder.encoder_for("a")

    def test_custom_similarity(self):
        enc = UpdateExampleEncoder(Schema("r", ["a"]), sim=lambda u, v: 0.42)
        features = enc.encode(("x",), "a", "y")
        assert features[-1] == pytest.approx(0.42)


class TestEncodeMany:
    """`encode_many` must be byte-identical to stacking `encode` calls."""

    def _examples(self):
        rows = [
            ("x", "y", "z"),
            ("x2", "y", "z2"),
            ("x", "y3", "z"),
            ("x4", "y4", "z4"),
        ]
        suggested = ["w", "y", "fresh", "y4"]
        return rows, suggested

    def test_matches_sequential_encode(self):
        rows, suggested = self._examples()
        sequential = UpdateExampleEncoder(Schema("r", ["a", "b", "c"]))
        expected = np.vstack(
            [sequential.encode(row, "b", value) for row, value in zip(rows, suggested)]
        )
        batched = UpdateExampleEncoder(Schema("r", ["a", "b", "c"]))
        got = batched.encode_many(rows, "b", suggested)
        assert np.array_equal(got, expected)

    def test_fresh_values_interleave_like_sequential(self):
        """The target attribute's encoder sees row value then suggested
        value per example — a column-major pass would assign different
        codes when both are new."""
        rows = [("r0",), ("r1",)]
        suggested = ["s0", "s1"]
        sequential = UpdateExampleEncoder(Schema("r", ["a"]))
        expected = np.vstack(
            [sequential.encode(row, "a", value) for row, value in zip(rows, suggested)]
        )
        batched = UpdateExampleEncoder(Schema("r", ["a"]))
        got = batched.encode_many(rows, "a", suggested)
        assert np.array_equal(got, expected)
        # interleaved assignment: r0=0, s0=1, r1=2, s1=3
        assert got[:, 0].tolist() == [0.0, 2.0]
        assert got[:, 1].tolist() == [1.0, 3.0]

    def test_custom_similarity_applies_per_row(self):
        rows, suggested = self._examples()
        enc = UpdateExampleEncoder(Schema("r", ["a", "b", "c"]), sim=lambda u, v: 0.42)
        got = enc.encode_many(rows, "b", suggested)
        assert got[:, -1].tolist() == [0.42] * len(rows)

    def test_empty_batch(self):
        enc = UpdateExampleEncoder(Schema("r", ["a", "b", "c"]))
        got = enc.encode_many([], "b", [])
        assert got.shape == (0, enc.n_features)

    def test_shared_state_with_sequential_use(self):
        # encode_many grows the same vocabularies encode uses
        enc = UpdateExampleEncoder(Schema("r", ["a", "b"]))
        enc.encode_many([("x", "y")], "b", ["w"])
        single = enc.encode(("x", "y"), "b", "w")
        assert np.array_equal(enc.encode_many([("x", "y")], "b", ["w"])[0], single)
