"""Tests for :mod:`repro.ml.encoding`."""

import numpy as np
import pytest

from repro.db import Schema
from repro.ml import (
    FEEDBACK_CLASSES,
    CategoricalEncoder,
    UpdateExampleEncoder,
    feedback_to_class,
)
from repro.repair import Feedback


class TestCategoricalEncoder:
    def test_codes_start_at_zero_and_grow(self):
        enc = CategoricalEncoder()
        assert enc.encode("a") == 0
        assert enc.encode("b") == 1
        assert enc.encode("a") == 0
        assert len(enc) == 2

    def test_decode_inverse(self):
        enc = CategoricalEncoder()
        enc.encode("x")
        enc.encode("y")
        assert enc.decode(1) == "y"

    def test_contains(self):
        enc = CategoricalEncoder()
        enc.encode("x")
        assert "x" in enc and "y" not in enc

    def test_mixed_types(self):
        enc = CategoricalEncoder()
        assert enc.encode(42) != enc.encode("42")


class TestFeedbackClasses:
    def test_fixed_ordering(self):
        assert FEEDBACK_CLASSES == (Feedback.CONFIRM, Feedback.REJECT, Feedback.RETAIN)

    def test_feedback_to_class(self):
        assert feedback_to_class(Feedback.CONFIRM) == 0
        assert feedback_to_class(Feedback.REJECT) == 1
        assert feedback_to_class(Feedback.RETAIN) == 2


class TestUpdateExampleEncoder:
    @pytest.fixture()
    def encoder(self):
        return UpdateExampleEncoder(Schema("r", ["a", "b", "c"]))

    def test_feature_width(self, encoder):
        assert encoder.n_features == 5  # 3 attrs + suggested value + similarity

    def test_encode_shape_and_dtype(self, encoder):
        features = encoder.encode(("x", "y", "z"), "b", "w")
        assert features.shape == (5,)
        assert features.dtype == np.float64

    def test_similarity_feature_for_identical_value(self, encoder):
        features = encoder.encode(("x", "y", "z"), "b", "y")
        assert features[-1] == 1.0

    def test_similarity_feature_for_different_value(self, encoder):
        features = encoder.encode(("x", "y", "z"), "b", "completely-different")
        assert 0.0 <= features[-1] < 1.0

    def test_same_example_same_features(self, encoder):
        one = encoder.encode(("x", "y", "z"), "a", "v")
        two = encoder.encode(("x", "y", "z"), "a", "v")
        assert np.array_equal(one, two)

    def test_suggested_value_shares_attribute_vocabulary(self, encoder):
        # encode a row where attribute 'a' holds "v", then suggest "v":
        # the suggestion column must reuse the same code
        features = encoder.encode(("v", "y", "z"), "a", "v")
        assert features[0] == features[3]

    def test_unseen_values_never_fail(self, encoder):
        for i in range(50):
            encoder.encode((f"x{i}", f"y{i}", f"z{i}"), "c", f"new{i}")

    def test_encoder_for(self, encoder):
        encoder.encode(("x", "y", "z"), "a", "v")
        assert "x" in encoder.encoder_for("a")

    def test_custom_similarity(self):
        enc = UpdateExampleEncoder(Schema("r", ["a"]), sim=lambda u, v: 0.42)
        features = enc.encode(("x",), "a", "y")
        assert features[-1] == pytest.approx(0.42)
