"""Tests for :mod:`repro.ml.tree`."""

import numpy as np
import pytest

from repro.errors import ConfigError, NotFittedError
from repro.ml import DecisionTreeClassifier


def _xor_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.random((n, 2))
    y = ((X[:, 0] > 0.5) ^ (X[:, 1] > 0.5)).astype(np.int64)
    return X, y


class TestFitBasics:
    def test_perfectly_separable(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 1, 1])
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.predict(np.array([[0.5], [2.5]])).tolist() == [0, 1]

    def test_xor_learnable(self):
        X, y = _xor_data()
        tree = DecisionTreeClassifier(random_state=0).fit(X, y)
        accuracy = float(np.mean(tree.predict(X) == y))
        assert accuracy > 0.95

    def test_single_class(self):
        X = np.array([[1.0], [2.0]])
        y = np.array([1, 1])
        tree = DecisionTreeClassifier().fit(X, y, n_classes=2)
        assert tree.predict(X).tolist() == [1, 1]
        proba = tree.predict_proba(X)
        assert proba.shape == (2, 2)
        assert proba[:, 1].tolist() == [1.0, 1.0]

    def test_constant_features_yield_leaf(self):
        X = np.ones((10, 3))
        y = np.array([0, 1] * 5)
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.node_count == 1
        assert tree.depth == 0

    def test_fit_returns_self(self):
        X, y = _xor_data(20)
        tree = DecisionTreeClassifier()
        assert tree.fit(X, y) is tree


class TestHyperParameters:
    def test_max_depth_limits_depth(self):
        X, y = _xor_data()
        tree = DecisionTreeClassifier(max_depth=2, random_state=0).fit(X, y)
        assert tree.depth <= 2

    def test_min_samples_leaf(self):
        X, y = _xor_data(50)
        tree = DecisionTreeClassifier(min_samples_leaf=10, random_state=0).fit(X, y)
        proba = tree.predict_proba(X)
        assert proba.shape == (50, 2)

    def test_min_samples_split_stops_early(self):
        X, y = _xor_data(50)
        tree = DecisionTreeClassifier(min_samples_split=200).fit(X, y)
        assert tree.node_count == 1

    def test_max_features_sqrt(self):
        X, y = _xor_data()
        tree = DecisionTreeClassifier(max_features="sqrt", random_state=1).fit(X, y)
        assert tree.predict(X).shape == (len(y),)

    def test_max_features_int_and_fraction(self):
        X, y = _xor_data(60)
        DecisionTreeClassifier(max_features=1, random_state=2).fit(X, y)
        DecisionTreeClassifier(max_features=0.5, random_state=2).fit(X, y)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_samples_split": 1},
            {"min_samples_leaf": 0},
            {"max_depth": 0},
            {"max_features": -1},
            {"max_features": 1.5},
            {"max_features": "bogus"},
        ],
    )
    def test_invalid_hyperparameters(self, kwargs):
        bad = kwargs.pop("max_features", None)
        if bad is not None:
            tree = DecisionTreeClassifier(max_features=bad)
            with pytest.raises(ConfigError):
                X, y = _xor_data(20)
                tree.fit(X, y)
        else:
            with pytest.raises(ConfigError):
                DecisionTreeClassifier(**kwargs)

    def test_deterministic_given_seed(self):
        X, y = _xor_data()
        a = DecisionTreeClassifier(max_features=1, random_state=7).fit(X, y)
        b = DecisionTreeClassifier(max_features=1, random_state=7).fit(X, y)
        assert np.array_equal(a.predict(X), b.predict(X))


class TestInputValidation:
    def test_one_dim_X_rejected(self):
        with pytest.raises(ConfigError):
            DecisionTreeClassifier().fit(np.array([1.0, 2.0]), np.array([0, 1]))

    def test_mismatched_y_rejected(self):
        with pytest.raises(ConfigError):
            DecisionTreeClassifier().fit(np.ones((3, 1)), np.array([0, 1]))

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            DecisionTreeClassifier().fit(np.ones((0, 2)), np.array([]))

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            DecisionTreeClassifier().predict(np.ones((1, 2)))

    def test_node_count_before_fit(self):
        with pytest.raises(NotFittedError):
            __ = DecisionTreeClassifier().node_count


class TestProbabilities:
    def test_proba_rows_sum_to_one(self):
        X, y = _xor_data()
        tree = DecisionTreeClassifier(max_depth=3, random_state=0).fit(X, y)
        proba = tree.predict_proba(X)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_predict_is_argmax_of_proba(self):
        X, y = _xor_data()
        tree = DecisionTreeClassifier(max_depth=4, random_state=0).fit(X, y)
        proba = tree.predict_proba(X)
        assert np.array_equal(tree.predict(X), np.argmax(proba, axis=1))

    def test_extra_classes_width(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([0, 1])
        tree = DecisionTreeClassifier().fit(X, y, n_classes=5)
        assert tree.predict_proba(X).shape == (2, 5)
