"""Tests for feature importances (tree, forest, feedback learner)."""

import numpy as np
import pytest

from repro.core import FeedbackLearner
from repro.db import Schema
from repro.ml import DecisionTreeClassifier, RandomForestClassifier
from repro.repair import CandidateUpdate, Feedback


def _signal_noise_data(n=300, seed=0):
    """Column 0 fully determines the label; columns 1-2 are noise."""
    rng = np.random.default_rng(seed)
    X = rng.random((n, 3))
    y = (X[:, 0] > 0.5).astype(np.int64)
    return X, y


class TestTreeImportances:
    def test_signal_feature_dominates(self):
        X, y = _signal_noise_data()
        tree = DecisionTreeClassifier(random_state=0).fit(X, y)
        importances = tree.feature_importances_
        assert importances[0] > 0.8

    def test_normalised(self):
        X, y = _signal_noise_data()
        tree = DecisionTreeClassifier(random_state=0).fit(X, y)
        assert tree.feature_importances_.sum() == pytest.approx(1.0)

    def test_pure_leaf_tree_all_zero(self):
        X = np.ones((5, 2))
        y = np.zeros(5, dtype=np.int64)
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.feature_importances_.sum() == 0.0

    def test_copy_returned(self):
        X, y = _signal_noise_data(50)
        tree = DecisionTreeClassifier(random_state=0).fit(X, y)
        tree.feature_importances_[0] = 99.0
        assert tree.feature_importances_[0] != 99.0


class TestForestImportances:
    def test_signal_feature_dominates(self):
        X, y = _signal_noise_data()
        forest = RandomForestClassifier(n_estimators=10, random_state=0).fit(X, y)
        importances = forest.feature_importances_
        assert int(np.argmax(importances)) == 0

    def test_shape(self):
        X, y = _signal_noise_data(100)
        forest = RandomForestClassifier(n_estimators=3, random_state=0).fit(X, y)
        assert forest.feature_importances_.shape == (3,)


class TestLearnerImportances:
    def test_none_before_training(self):
        learner = FeedbackLearner(Schema("r", ["src", "city"]), seed=0)
        assert learner.feature_importances("city") is None

    def test_source_feature_matters(self):
        """Feedback correlated with the source column must show up."""
        schema = Schema("r", ["src", "city"])
        learner = FeedbackLearner(schema, min_examples=4, seed=0)
        for i in range(20):
            update = CandidateUpdate(i, "city", "Fort Wayne", 0.5)
            source = "H2" if i % 2 == 0 else "H9"
            label = Feedback.CONFIRM if source == "H2" else Feedback.REJECT
            learner.add_example(update, (source, f"city{i}"), label)
        learner.retrain("city")
        importances = learner.feature_importances("city")
        assert importances is not None
        assert set(importances) == {"src", "city", "suggested_value", "similarity"}
        assert importances["src"] == max(importances.values())
