"""Histogram learner stack: bit-parity with the exact-sort reference.

The histogram CART and forest are required to reproduce the exact
reference *bit for bit* — same RNG stream, same float64 arithmetic,
same tie-breaks — which is what lets ``learner="hist"`` be the engine
default without regolding a single trajectory. These tests pin that
contract with randomized property sweeps over the node arrays
themselves, not just predictions.
"""

import numpy as np
import pytest

from repro.ml.binning import BinnedMatrix, bin_matrix, code_dtype
from repro.ml.forest import HistogramForestClassifier, RandomForestClassifier
from repro.ml.metrics import vote_entropy
from repro.ml.tree import DecisionTreeClassifier, HistogramTreeClassifier

TREE_ARRAYS = ("_feature", "_threshold", "_left", "_right", "_proba", "_importances")


def assert_trees_identical(a, b):
    for name in TREE_ARRAYS:
        va, vb = getattr(a, name), getattr(b, name)
        assert va.shape == vb.shape, f"{name} shape {va.shape} != {vb.shape}"
        assert np.array_equal(va, vb), f"{name} differs"


def random_matrix(rng, n, m, kind):
    if kind == 0:  # pure categorical codes
        return rng.integers(0, int(rng.integers(2, 12)), size=(n, m)).astype(float)
    if kind == 1:  # mixed codes + one float column (the learner's shape)
        X = rng.integers(0, 6, size=(n, m)).astype(float)
        X[:, -1] = rng.random(n).round(2)
        return X
    return rng.normal(size=(n, m)).round(1)  # continuous with duplicates


class TestBinning:
    def test_lossless_round_trip(self):
        rng = np.random.default_rng(3)
        X = random_matrix(rng, 40, 5, 1)
        binned = bin_matrix(X)
        rebuilt = np.column_stack(
            [binned.bin_values[j][binned.codes[:, j]] for j in range(5)]
        )
        assert np.array_equal(rebuilt, X)

    def test_bin_values_sorted_unique(self):
        X = np.array([[3.0], [1.0], [3.0], [2.0]])
        binned = bin_matrix(X)
        assert binned.bin_values[0].tolist() == [1.0, 2.0, 3.0]
        assert binned.codes[:, 0].tolist() == [2, 0, 2, 1]

    def test_code_dtype_tiers(self):
        assert code_dtype(200) == np.uint8
        assert code_dtype(300) == np.uint16
        assert code_dtype(1 << 17) == np.uint32

    def test_take_shares_bin_tables(self):
        X = np.arange(12, dtype=float).reshape(6, 2)
        binned = bin_matrix(X)
        sub = binned.take(np.array([0, 3, 3]))
        assert isinstance(sub, BinnedMatrix)
        assert sub.bin_values is binned.bin_values
        assert np.array_equal(sub.codes, binned.codes[[0, 3, 3]])


class TestTreeParity:
    @pytest.mark.parametrize("trial", range(60))
    def test_randomized_node_arrays_identical(self, trial):
        rng = np.random.default_rng(1000 + trial)
        n = int(rng.integers(5, 100))
        m = int(rng.integers(1, 8))
        C = int(rng.integers(2, 6))
        X = random_matrix(rng, n, m, trial % 3)
        y = rng.integers(0, C, size=n)
        kw = dict(
            max_depth=[None, 3, 12][trial % 3],
            min_samples_leaf=int(rng.integers(1, 4)),
            max_features=["sqrt", None, 2][trial % 3] if m > 1 else None,
        )
        seed = int(rng.integers(0, 2**31))
        exact = DecisionTreeClassifier(random_state=seed, **kw).fit(X, y, n_classes=C)
        hist = HistogramTreeClassifier(random_state=seed, **kw).fit(X, y, n_classes=C)
        assert_trees_identical(exact, hist)

    def test_high_cardinality_column_exercises_compact_path(self):
        # > _HIST_MAX_BINS distinct values routes through the
        # node-compact split search; parity must hold there too
        rng = np.random.default_rng(9)
        X = np.column_stack([rng.integers(0, 4, 600), rng.random(600)]).astype(float)
        y = rng.integers(0, 3, size=600)
        exact = DecisionTreeClassifier(random_state=5, max_depth=8).fit(X, y, n_classes=3)
        hist = HistogramTreeClassifier(random_state=5, max_depth=8).fit(X, y, n_classes=3)
        assert_trees_identical(exact, hist)

    def test_depth_property_matches_walk(self):
        rng = np.random.default_rng(2)
        X = random_matrix(rng, 80, 4, 0)
        y = rng.integers(0, 3, size=80)
        tree = DecisionTreeClassifier(random_state=0).fit(X, y, n_classes=3)

        def scalar_depth(node=0):
            if tree._feature[node] == -1:
                return 0
            return 1 + max(
                scalar_depth(int(tree._left[node])), scalar_depth(int(tree._right[node]))
            )

        assert tree.depth == scalar_depth()


class TestForestParity:
    @pytest.mark.parametrize("seed", range(5))
    def test_committee_bit_identical(self, seed):
        rng = np.random.default_rng(50 + seed)
        n, m, C = 150, 6, 4
        X = random_matrix(rng, n, m, 1)
        y = rng.integers(0, C, size=n)
        Xq = random_matrix(rng, 40, m, 1)
        exact = RandomForestClassifier(
            n_estimators=10, max_depth=12, random_state=seed
        ).fit(X, y, n_classes=C)
        hist = HistogramForestClassifier(
            n_estimators=10, max_depth=12, random_state=seed
        ).fit(X, y, n_classes=C)
        for ta, tb in zip(exact.trees, hist.trees):
            assert_trees_identical(ta, tb)
        assert np.array_equal(exact.vote_fractions(X), hist.vote_fractions(X))
        assert np.array_equal(exact.vote_fractions(Xq), hist.vote_fractions(Xq))
        assert np.array_equal(exact.predict(Xq), hist.predict(Xq))
        assert np.array_equal(exact.feature_importances_, hist.feature_importances_)
        assert np.array_equal(exact.uncertainty(Xq), hist.uncertainty(Xq))

    def test_fit_accepts_prebinned_matrix(self):
        rng = np.random.default_rng(4)
        X = random_matrix(rng, 60, 4, 1)
        y = rng.integers(0, 3, size=60)
        cold = HistogramForestClassifier(random_state=1).fit(X, y, n_classes=3)
        warm = HistogramForestClassifier(random_state=1).fit(
            X, y, n_classes=3, binned=bin_matrix(X)
        )
        for ta, tb in zip(cold.trees, warm.trees):
            assert_trees_identical(ta, tb)

    def test_predict_one_matches_reference(self):
        rng = np.random.default_rng(6)
        X = random_matrix(rng, 100, 5, 1)
        y = rng.integers(0, 3, size=100)
        exact = RandomForestClassifier(random_state=2).fit(X, y, n_classes=3)
        hist = HistogramForestClassifier(random_state=2).fit(X, y, n_classes=3)
        for row in X[:10]:
            la, fa, ua = exact.predict_one(row)
            lb, fb, ub = hist.predict_one(row)
            assert la == lb
            assert np.array_equal(fa, fb)
            assert ua == ub


class TestVectorizedUncertainty:
    def test_matches_scalar_vote_entropy(self):
        rng = np.random.default_rng(11)
        X = random_matrix(rng, 120, 5, 1)
        y = rng.integers(0, 4, size=120)
        forest = RandomForestClassifier(random_state=3).fit(X, y, n_classes=4)
        fractions = forest.vote_fractions(X)
        scalar = np.array([vote_entropy(f, 4) for f in fractions])
        assert np.array_equal(forest.uncertainty(X), scalar)

    def test_single_class_committee_is_certain(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.zeros(4, dtype=np.int64)
        forest = RandomForestClassifier(random_state=0).fit(X, y, n_classes=1)
        assert forest.uncertainty(X).tolist() == [0.0, 0.0, 0.0, 0.0]
