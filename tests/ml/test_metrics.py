"""Tests for :mod:`repro.ml.metrics`, incl. the paper's §4.2 example."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ml import accuracy_score, confusion_matrix, entropy, vote_entropy


class TestEntropy:
    def test_uniform_binary_base2(self):
        assert entropy([0.5, 0.5], base=2) == pytest.approx(1.0)

    def test_degenerate(self):
        assert entropy([1.0, 0.0, 0.0]) == 0.0

    def test_zero_probabilities_ignored(self):
        assert entropy([0.5, 0.5, 0.0], base=2) == pytest.approx(1.0)

    def test_natural_log_default(self):
        assert entropy([0.5, 0.5]) == pytest.approx(math.log(2))

    @given(
        st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=2, max_size=6)
    )
    def test_nonnegative(self, weights):
        total = sum(weights)
        fractions = [w / total for w in weights]
        assert entropy(fractions) >= 0.0


class TestVoteEntropyPaperExample:
    def test_paper_uncertainty_example_confirm_case(self):
        """§4.2: votes (3/5 confirm, 1/5 reject, 1/5 retain) -> 0.86."""
        assert vote_entropy([3 / 5, 1 / 5, 1 / 5]) == pytest.approx(0.86, abs=0.005)

    def test_paper_uncertainty_example_reject_case(self):
        """§4.2: votes (1/5 confirm, 4/5 reject) -> 0.45."""
        assert vote_entropy([1 / 5, 4 / 5, 0.0]) == pytest.approx(0.455, abs=0.005)

    def test_unanimous_committee_is_certain(self):
        assert vote_entropy([1.0, 0.0, 0.0]) == 0.0

    def test_maximal_split_is_one(self):
        assert vote_entropy([1 / 3, 1 / 3, 1 / 3]) == pytest.approx(1.0)

    def test_explicit_class_count(self):
        assert vote_entropy([0.5, 0.5], n_classes=2) == pytest.approx(1.0)

    def test_single_class_zero(self):
        assert vote_entropy([1.0], n_classes=1) == 0.0

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=3, max_size=3))
    def test_bounded_zero_one(self, raw):
        total = sum(raw)
        if total == 0:
            return
        fractions = [x / total for x in raw]
        assert 0.0 <= vote_entropy(fractions) <= 1.0 + 1e-9


class TestAccuracy:
    def test_perfect(self):
        assert accuracy_score([0, 1, 2], [0, 1, 2]) == 1.0

    def test_half(self):
        assert accuracy_score([0, 1], [0, 0]) == 0.5

    def test_empty(self):
        assert accuracy_score([], []) == 1.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy_score([0, 1], [0])


class TestConfusionMatrix:
    def test_basic(self):
        matrix = confusion_matrix([0, 0, 1, 2], [0, 1, 1, 2], n_classes=3)
        assert matrix[0, 0] == 1
        assert matrix[0, 1] == 1
        assert matrix[1, 1] == 1
        assert matrix[2, 2] == 1
        assert matrix.sum() == 4

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            confusion_matrix([0], [0, 1], n_classes=2)

    def test_dtype(self):
        matrix = confusion_matrix([0], [0], n_classes=1)
        assert matrix.dtype == np.int64
