"""Tests for :mod:`repro.ml.forest` (the committee of §4.2)."""

import numpy as np
import pytest

from repro.errors import ConfigError, NotFittedError
from repro.ml import RandomForestClassifier


def _blobs(n=120, seed=0):
    rng = np.random.default_rng(seed)
    X0 = rng.normal(0.0, 0.4, size=(n // 2, 3))
    X1 = rng.normal(2.0, 0.4, size=(n // 2, 3))
    X = np.vstack([X0, X1])
    y = np.array([0] * (n // 2) + [1] * (n // 2))
    return X, y


class TestForestFit:
    def test_learns_separable_blobs(self):
        X, y = _blobs()
        forest = RandomForestClassifier(n_estimators=5, random_state=0).fit(X, y)
        assert float(np.mean(forest.predict(X) == y)) > 0.95

    def test_committee_size(self):
        X, y = _blobs(40)
        forest = RandomForestClassifier(n_estimators=7, random_state=0).fit(X, y)
        assert len(forest.trees) == 7

    def test_bootstrap_fraction(self):
        X, y = _blobs(40)
        forest = RandomForestClassifier(
            n_estimators=3, bootstrap_fraction=0.5, random_state=0
        ).fit(X, y)
        assert forest.predict(X).shape == (40,)

    def test_deterministic_given_seed(self):
        X, y = _blobs()
        a = RandomForestClassifier(n_estimators=5, random_state=3).fit(X, y)
        b = RandomForestClassifier(n_estimators=5, random_state=3).fit(X, y)
        assert np.array_equal(a.vote_fractions(X), b.vote_fractions(X))

    @pytest.mark.parametrize("kwargs", [{"n_estimators": 0}, {"bootstrap_fraction": 0.0}])
    def test_invalid_params(self, kwargs):
        with pytest.raises(ConfigError):
            RandomForestClassifier(**kwargs)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigError):
            RandomForestClassifier().fit(np.ones((0, 2)), np.array([]))
        with pytest.raises(ConfigError):
            RandomForestClassifier().fit(np.ones((3, 2)), np.array([0, 1]))


class TestVotesAndUncertainty:
    def test_vote_fractions_sum_to_one(self):
        X, y = _blobs()
        forest = RandomForestClassifier(n_estimators=9, random_state=0).fit(X, y)
        fractions = forest.vote_fractions(X)
        np.testing.assert_allclose(fractions.sum(axis=1), 1.0)

    def test_vote_fractions_are_multiples_of_inverse_k(self):
        X, y = _blobs()
        k = 5
        forest = RandomForestClassifier(n_estimators=k, random_state=0).fit(X, y)
        fractions = forest.vote_fractions(X[:10])
        np.testing.assert_allclose((fractions * k) % 1.0, 0.0, atol=1e-9)

    def test_predict_proba_alias(self):
        X, y = _blobs(40)
        forest = RandomForestClassifier(n_estimators=4, random_state=0).fit(X, y)
        assert np.array_equal(forest.predict_proba(X), forest.vote_fractions(X))

    def test_uncertainty_low_on_clear_points(self):
        X, y = _blobs()
        forest = RandomForestClassifier(n_estimators=10, random_state=0).fit(X, y)
        uncertainty = forest.uncertainty(X)
        assert uncertainty.mean() < 0.2

    def test_uncertainty_bounds(self):
        X, y = _blobs()
        forest = RandomForestClassifier(n_estimators=10, random_state=0).fit(X, y)
        uncertainty = forest.uncertainty(X)
        assert np.all(uncertainty >= 0.0) and np.all(uncertainty <= 1.0)

    def test_predict_one(self):
        X, y = _blobs()
        forest = RandomForestClassifier(n_estimators=5, random_state=0).fit(X, y)
        label, fractions, uncertainty = forest.predict_one(X[0])
        assert label in (0, 1)
        assert fractions.shape == (2,)
        assert 0.0 <= uncertainty <= 1.0

    def test_not_fitted_errors(self):
        forest = RandomForestClassifier()
        with pytest.raises(NotFittedError):
            forest.predict(np.ones((1, 2)))
        with pytest.raises(NotFittedError):
            __ = forest.trees

    def test_three_classes(self):
        rng = np.random.default_rng(0)
        X = np.vstack([rng.normal(c, 0.3, size=(30, 2)) for c in (0.0, 2.0, 4.0)])
        y = np.repeat([0, 1, 2], 30)
        forest = RandomForestClassifier(n_estimators=10, random_state=0).fit(X, y)
        assert float(np.mean(forest.predict(X) == y)) > 0.9
        assert forest.vote_fractions(X).shape == (90, 3)
