"""Tests for :mod:`repro.repair.similarity` (paper Eq. 7)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.repair import EditDistanceSimilarity, levenshtein, similarity, token_jaccard
from repro.repair.similarity import best_candidate

TEXT = st.text(alphabet="abcde ", max_size=12)


class TestLevenshtein:
    @pytest.mark.parametrize(
        ("a", "b", "expected"),
        [
            ("", "", 0),
            ("a", "", 1),
            ("", "abc", 3),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("46360", "46391", 2),
            ("abc", "abc", 0),
        ],
    )
    def test_known_distances(self, a, b, expected):
        assert levenshtein(a, b) == expected

    @given(a=TEXT, b=TEXT)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(a=TEXT)
    def test_identity(self, a):
        assert levenshtein(a, a) == 0

    @given(a=TEXT, b=TEXT)
    def test_bounds(self, a, b):
        d = levenshtein(a, b)
        assert abs(len(a) - len(b)) <= d <= max(len(a), len(b))

    @given(a=TEXT, b=TEXT, c=TEXT)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(a=TEXT, b=TEXT)
    def test_agrees_with_reference_dp(self, a, b):
        m, n = len(a), len(b)
        table = [[0] * (n + 1) for __ in range(m + 1)]
        for i in range(m + 1):
            table[i][0] = i
        for j in range(n + 1):
            table[0][j] = j
        for i in range(1, m + 1):
            for j in range(1, n + 1):
                cost = 0 if a[i - 1] == b[j - 1] else 1
                table[i][j] = min(
                    table[i - 1][j] + 1, table[i][j - 1] + 1, table[i - 1][j - 1] + cost
                )
        assert levenshtein(a, b) == table[m][n]


class TestSimilarity:
    def test_equal_values_score_one(self):
        assert similarity("x", "x") == 1.0
        assert similarity(42, 42) == 1.0

    def test_empty_strings(self):
        assert similarity("", "") == 1.0

    def test_range(self):
        assert 0.0 <= similarity("Westville", "Michigan City") <= 1.0

    def test_eq7_formula(self):
        # dist('46360', '46391') = 2, max length 5 -> 1 - 2/5
        assert similarity("46360", "46391") == pytest.approx(0.6)

    def test_non_string_values_stringified(self):
        assert similarity(46360, 46391) == pytest.approx(0.6)

    def test_paper_example_zero_similarity_is_valid(self):
        # 'Westville' -> 'Michigan City' is a genuine suggestion in the
        # paper despite an edit distance equal to the longer length.
        assert similarity("Westville", "Michigan City") == 0.0

    @given(a=TEXT, b=TEXT)
    def test_symmetric(self, a, b):
        assert similarity(a, b) == pytest.approx(similarity(b, a))

    @given(a=TEXT, b=TEXT)
    def test_bounded(self, a, b):
        assert 0.0 <= similarity(a, b) <= 1.0


class TestTokenJaccard:
    def test_identical(self):
        assert token_jaccard("fort wayne", "Fort Wayne") == 1.0

    def test_disjoint(self):
        assert token_jaccard("aaa", "bbb") == 0.0

    def test_partial_overlap(self):
        assert token_jaccard("fort wayne", "wayne county") == pytest.approx(1 / 3)

    def test_empty_both(self):
        assert token_jaccard("", "") == 1.0

    @given(a=TEXT, b=TEXT)
    def test_bounded(self, a, b):
        assert 0.0 <= token_jaccard(a, b) <= 1.0


class TestEditDistanceSimilarity:
    def test_case_sensitive_default(self):
        sim = EditDistanceSimilarity()
        assert sim("IN", "in") < 1.0

    def test_case_insensitive(self):
        sim = EditDistanceSimilarity(case_sensitive=False)
        assert sim("IN", "in") == 1.0

    def test_repr(self):
        assert "case_sensitive" in repr(EditDistanceSimilarity())


class TestCandidateSelection:
    def test_best_candidate_picks_highest_similarity(self):
        value, score = best_candidate("Westvile", ["Westville", "Gary"])
        assert value == "Westville"
        assert score == similarity("Westvile", "Westville")

    def test_best_candidate_skips_current_excluded_and_none(self):
        value, __ = best_candidate(
            "Westville", ["Westville", None, "Gary", "Hammond"], excluded={"Gary"}
        )
        assert value == "Hammond"

    def test_best_candidate_tie_breaks_lexicographically(self):
        # equal scores: the lexicographically smaller string wins,
        # independent of candidate order
        a, __ = best_candidate("ab", ["xb", "yb"])
        b, __ = best_candidate("ab", ["yb", "xb"])
        assert a == b == "xb"

    def test_best_candidate_empty_pool(self):
        assert best_candidate("v", []) == (None, -1.0)

    def test_zero_similarity_still_admissible(self):
        value, score = best_candidate("Westville", ["Michigan City"])
        assert value == "Michigan City"
        assert score == 0.0
