"""Tests for :mod:`repro.repair.similarity` (paper Eq. 7)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.db.columnar import ColumnStore
from repro.db.schema import Schema
from repro.repair import (
    EditDistanceSimilarity,
    SimilarityCache,
    levenshtein,
    levenshtein_many,
    similarity,
    similarity_many,
    token_jaccard,
)
from repro.repair.similarity import best_candidate

TEXT = st.text(alphabet="abcde ", max_size=12)
#: Full-unicode strings for the batched-kernel property tests.
UNITEXT = st.text(max_size=10)


class TestLevenshtein:
    @pytest.mark.parametrize(
        ("a", "b", "expected"),
        [
            ("", "", 0),
            ("a", "", 1),
            ("", "abc", 3),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("46360", "46391", 2),
            ("abc", "abc", 0),
        ],
    )
    def test_known_distances(self, a, b, expected):
        assert levenshtein(a, b) == expected

    @given(a=TEXT, b=TEXT)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(a=TEXT)
    def test_identity(self, a):
        assert levenshtein(a, a) == 0

    @given(a=TEXT, b=TEXT)
    def test_bounds(self, a, b):
        d = levenshtein(a, b)
        assert abs(len(a) - len(b)) <= d <= max(len(a), len(b))

    @given(a=TEXT, b=TEXT, c=TEXT)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(a=TEXT, b=TEXT)
    def test_agrees_with_reference_dp(self, a, b):
        m, n = len(a), len(b)
        table = [[0] * (n + 1) for __ in range(m + 1)]
        for i in range(m + 1):
            table[i][0] = i
        for j in range(n + 1):
            table[0][j] = j
        for i in range(1, m + 1):
            for j in range(1, n + 1):
                cost = 0 if a[i - 1] == b[j - 1] else 1
                table[i][j] = min(
                    table[i - 1][j] + 1, table[i][j - 1] + 1, table[i - 1][j - 1] + cost
                )
        assert levenshtein(a, b) == table[m][n]


class TestLevenshteinMany:
    """The batched NumPy kernel against the scalar reference."""

    @given(query=UNITEXT, candidates=st.lists(UNITEXT, max_size=8))
    def test_matches_scalar_reference(self, query, candidates):
        got = levenshtein_many(query, candidates).tolist()
        assert got == [levenshtein(query, c) for c in candidates]

    @given(query=UNITEXT)
    def test_empty_candidate_list(self, query):
        assert levenshtein_many(query, []).tolist() == []

    @given(candidates=st.lists(UNITEXT, min_size=1, max_size=8))
    def test_empty_query_gives_lengths(self, candidates):
        got = levenshtein_many("", candidates).tolist()
        assert got == [len(c) for c in candidates]

    @given(query=UNITEXT, n=st.integers(min_value=1, max_value=5))
    def test_equal_strings_give_zero(self, query, n):
        assert levenshtein_many(query, [query] * n).tolist() == [0] * n

    def test_empty_strings_in_batch(self):
        assert levenshtein_many("abc", ["", "abc", "", "ab"]).tolist() == [3, 0, 3, 1]

    def test_mixed_lengths_padding_never_leaks(self):
        # a short candidate next to a long one: the DP must read each
        # result at the candidate's own length, never the pad columns
        assert levenshtein_many("abcdef", ["a", "abcdefgh"]).tolist() == [5, 2]

    def test_surrogate_and_astral_codepoints(self):
        cands = ["\U0001F600", "a\U0001F600b", "\ud800"]
        got = levenshtein_many("a\ud800", cands).tolist()
        assert got == [levenshtein("a\ud800", c) for c in cands]

    @given(original=UNITEXT, candidates=st.lists(UNITEXT, max_size=8))
    def test_similarity_many_matches_scalar(self, original, candidates):
        assert similarity_many(original, candidates) == [
            similarity(original, c) for c in candidates
        ]

    def test_similarity_many_equality_shortcut_for_mixed_types(self):
        # 1 == True and 1 == 1.0 but their strings differ: the batched
        # path must fire the equality shortcut before stringifying,
        # exactly like the scalar function
        candidates = [True, 1.0, 2, "1"]
        assert similarity_many(1, candidates) == [
            similarity(1, c) for c in candidates
        ]
        assert similarity_many(1, [True])[0] == 1.0


def _store(values):
    schema = Schema("r", ["a"])
    return ColumnStore(schema, [(i, [v]) for i, v in enumerate(values)])


class TestSimilarityCache:
    def test_callable_matches_similarity(self):
        cache = SimilarityCache()
        pairs = [("Westvile", "Westville"), ("46360", "46391"), (1, 1.0), ("", "")]
        for a, b in pairs:
            assert cache(a, b) == similarity(a, b)
        # second pass answers from the memo with identical values
        for a, b in pairs:
            assert cache(a, b) == similarity(a, b)
        assert cache.stats["hits"] > 0

    def test_scores_code_space_matches_scalar(self):
        values = ["Michigan City", "Westville", "Wstville", "Gary"]
        cache = SimilarityCache(_store(values))
        candidates = values + ["Fort Wayne"]  # last one out-of-vocabulary
        expected = [similarity("Westville", v) for v in candidates]
        assert cache.scores(0, "Westville", candidates) == expected
        assert cache.scores(0, "Westville", candidates) == expected  # memo hits
        assert cache.stats["hits"] > 0
        assert cache.stats["pair_entries"] > 0
        assert cache.stats["str_entries"] == 1

    def test_scores_without_columns_falls_back(self):
        cache = SimilarityCache()
        got = cache.scores(0, "abc", ["abd", "xyz"])
        assert got == [similarity("abc", "abd"), similarity("abc", "xyz")]

    def test_scores_out_of_vocabulary_current(self):
        cache = SimilarityCache(_store(["x", "y"]))
        got = cache.scores(0, "never-stored", ["x", "y"])
        assert got == [similarity("never-stored", v) for v in ["x", "y"]]

    def test_capacity_purges_and_counts_evictions(self):
        cache = SimilarityCache(_store(["aa", "ab", "ac", "ad"]), capacity=2)
        for current in ["aa", "ab", "ac"]:
            got = cache.scores(0, current, ["aa", "ab", "ac", "ad"])
            assert got == [similarity(current, v) for v in ["aa", "ab", "ac", "ad"]]
        assert cache.stats["evictions"] > 0
        assert len(cache) <= 4  # one batch may overshoot; the next purges

    def test_duplicate_candidates_counted_once(self):
        cache = SimilarityCache(_store(["aa", "ab"]))
        cache.scores(0, "aa", ["ab", "ab", "ab"])
        assert cache.stats["pair_entries"] == 1

    def test_clear_keeps_counters(self):
        cache = SimilarityCache()
        cache("a", "b")
        hits, misses = cache.stats["hits"], cache.stats["misses"]
        cache.clear()
        assert len(cache) == 0
        assert cache.stats["misses"] == misses
        assert cache.stats["hits"] == hits


class TestSimilarity:
    def test_equal_values_score_one(self):
        assert similarity("x", "x") == 1.0
        assert similarity(42, 42) == 1.0

    def test_empty_strings(self):
        assert similarity("", "") == 1.0

    def test_range(self):
        assert 0.0 <= similarity("Westville", "Michigan City") <= 1.0

    def test_eq7_formula(self):
        # dist('46360', '46391') = 2, max length 5 -> 1 - 2/5
        assert similarity("46360", "46391") == pytest.approx(0.6)

    def test_non_string_values_stringified(self):
        assert similarity(46360, 46391) == pytest.approx(0.6)

    def test_paper_example_zero_similarity_is_valid(self):
        # 'Westville' -> 'Michigan City' is a genuine suggestion in the
        # paper despite an edit distance equal to the longer length.
        assert similarity("Westville", "Michigan City") == 0.0

    @given(a=TEXT, b=TEXT)
    def test_symmetric(self, a, b):
        assert similarity(a, b) == pytest.approx(similarity(b, a))

    @given(a=TEXT, b=TEXT)
    def test_bounded(self, a, b):
        assert 0.0 <= similarity(a, b) <= 1.0


class TestTokenJaccard:
    def test_identical(self):
        assert token_jaccard("fort wayne", "Fort Wayne") == 1.0

    def test_disjoint(self):
        assert token_jaccard("aaa", "bbb") == 0.0

    def test_partial_overlap(self):
        assert token_jaccard("fort wayne", "wayne county") == pytest.approx(1 / 3)

    def test_empty_both(self):
        assert token_jaccard("", "") == 1.0

    @given(a=TEXT, b=TEXT)
    def test_bounded(self, a, b):
        assert 0.0 <= token_jaccard(a, b) <= 1.0


class TestEditDistanceSimilarity:
    def test_case_sensitive_default(self):
        sim = EditDistanceSimilarity()
        assert sim("IN", "in") < 1.0

    def test_case_insensitive(self):
        sim = EditDistanceSimilarity(case_sensitive=False)
        assert sim("IN", "in") == 1.0

    def test_repr(self):
        assert "case_sensitive" in repr(EditDistanceSimilarity())


class TestCandidateSelection:
    def test_best_candidate_picks_highest_similarity(self):
        value, score = best_candidate("Westvile", ["Westville", "Gary"])
        assert value == "Westville"
        assert score == similarity("Westvile", "Westville")

    def test_best_candidate_skips_current_excluded_and_none(self):
        value, __ = best_candidate(
            "Westville", ["Westville", None, "Gary", "Hammond"], excluded={"Gary"}
        )
        assert value == "Hammond"

    def test_best_candidate_tie_breaks_lexicographically(self):
        # equal scores: the lexicographically smaller string wins,
        # independent of candidate order
        a, __ = best_candidate("ab", ["xb", "yb"])
        b, __ = best_candidate("ab", ["yb", "xb"])
        assert a == b == "xb"

    def test_best_candidate_empty_pool(self):
        assert best_candidate("v", []) == (None, -1.0)

    def test_zero_similarity_still_admissible(self):
        value, score = best_candidate("Westville", ["Michigan City"])
        assert value == "Michigan City"
        assert score == 0.0
