"""Tests for the consistency manager's database-trigger hook (paper §3).

"Since GDR is meant for repairing online databases, the consistency
manager will need to be informed (e.g., through database triggers) with
any newly added or modified tuples so it can maintain the consistency
of the suggested updates."
"""

import pytest

from repro.constraints import ViolationDetector
from repro.repair import ConsistencyManager, RepairState, UpdateGenerator, UserFeedback


@pytest.fixture()
def setup(figure1_dirty, figure1_rules):
    detector = ViolationDetector(figure1_dirty, figure1_rules)
    state = RepairState()
    generator = UpdateGenerator(figure1_dirty, figure1_rules, detector, state)
    manager = ConsistencyManager(figure1_dirty, figure1_rules, detector, state, generator)
    generator.generate_all()
    return figure1_dirty, detector, state, manager


class TestExternalEdits:
    def test_external_fix_prunes_stale_suggestion(self, setup):
        db, detector, state, manager = setup
        assert state.get((1, "city")) is not None
        db.set_value(1, "city", "Michigan City", source="external")
        # the trigger must have dropped the now-satisfied suggestion
        suggestion = state.get((1, "city"))
        assert suggestion is None or suggestion.value != "Michigan City"
        assert manager.check_invariants() == []

    def test_external_edit_matching_suggestion_value(self, setup):
        db, detector, state, manager = setup
        suggestion = state.get((1, "city"))
        db.set_value(1, "city", suggestion.value, source="external")
        assert manager.check_invariants() == []

    def test_external_corruption_generates_suggestions(self, setup):
        db, detector, state, manager = setup
        db.set_value(3, "city", "Garbage City", source="external")
        assert detector.is_dirty(3)
        assert any(u.tid == 3 for u in state.updates())
        assert manager.check_invariants() == []

    def test_internal_writes_not_double_processed(self, setup):
        db, detector, state, manager = setup
        update = state.get((1, "city"))
        result = manager.apply_feedback(update, UserFeedback.confirm())
        assert result.wrote_database
        assert manager.check_invariants() == []
        assert not state.is_changeable((1, "city"))

    def test_detach_stops_trigger(self, setup):
        db, detector, state, manager = setup
        manager.detach()
        suggestion = state.get((1, "city"))
        db.set_value(1, "city", suggestion.value, source="external")
        # stale suggestion remains: the trigger is off
        assert state.get((1, "city")) == suggestion

    def test_invariants_hold_under_mixed_traffic(self, setup, figure1_clean):
        from repro.core import GroundTruthOracle

        db, detector, state, manager = setup
        oracle = GroundTruthOracle(figure1_clean)
        for step in range(30):
            if step % 3 == 0:
                tid = db.tids()[step % len(db.tids())]
                db.set_value(tid, "state", "IN" if step % 2 else "XX", source="external")
            updates = state.updates()
            if not updates:
                break
            update = updates[0]
            manager.apply_feedback(update, oracle.review(update, db.value(*update.cell)))
            assert manager.check_invariants() == []
            assert detector.verify()
