"""Tests for :mod:`repro.repair.heuristic` (the automatic baseline)."""

import pytest

from repro.constraints import RuleSet, ViolationDetector, parse_rules
from repro.db import Database, Schema
from repro.repair import batch_repair


class TestConstantResolution:
    def test_single_constant_fix(self):
        schema = Schema("r", ["zip", "city"])
        db = Database(schema, [["46360", "Westvile"]])
        rules = RuleSet(parse_rules("(zip -> city, {46360 || 'Michigan City'})"))
        result = batch_repair(db, rules)
        assert db.value(0, "city") == "Michigan City"
        assert result.remaining_violations == 0
        assert result.converged
        assert result.changed_cells == [(0, "city")]

    def test_clean_database_untouched(self):
        schema = Schema("r", ["zip", "city"])
        db = Database(schema, [["46360", "Michigan City"]])
        rules = RuleSet(parse_rules("(zip -> city, {46360 || 'Michigan City'})"))
        result = batch_repair(db, rules)
        assert result.changed_cells == []
        assert result.passes == 0
        assert result.converged


class TestVariableResolution:
    def test_majority_value_wins(self):
        schema = Schema("r", ["street", "zip"])
        db = Database(
            schema,
            [["Main St", "1"], ["Main St", "2"], ["Main St", "2"], ["Main St", "2"]],
        )
        rules = RuleSet(parse_rules("(street -> zip, {- || -})"))
        batch_repair(db, rules)
        assert db.value(0, "zip") == "2"
        assert all(db.value(t, "zip") == "2" for t in db.tids())

    def test_majority_can_be_wrong(self):
        """Bursty errors flip the majority - the heuristic's blind spot."""
        schema = Schema("r", ["street", "zip"])
        db = Database(
            schema,
            [["Main St", "good"], ["Main St", "bad"], ["Main St", "bad"]],
        )
        rules = RuleSet(parse_rules("(street -> zip, {- || -})"))
        batch_repair(db, rules)
        assert db.value(0, "zip") == "bad"  # consistent but incorrect

    def test_tie_broken_by_change_cost(self):
        schema = Schema("r", ["street", "zip"])
        db = Database(schema, [["Main St", "46360"], ["Main St", "46361"]])
        rules = RuleSet(parse_rules("(street -> zip, {- || -})"))
        batch_repair(db, rules)
        # tie on count: both values cost one change of distance 1;
        # deterministic outcome either way, but group must be uniform
        assert db.value(0, "zip") == db.value(1, "zip")


class TestCascades:
    def test_multi_pass_convergence(self, figure1_dirty, figure1_rules):
        result = batch_repair(figure1_dirty, figure1_rules)
        detector = ViolationDetector(figure1_dirty, figure1_rules)
        assert detector.vio_total() == result.remaining_violations
        assert result.remaining_violations == 0

    def test_max_passes_respected(self, figure1_dirty, figure1_rules):
        result = batch_repair(figure1_dirty, figure1_rules, max_passes=1)
        assert result.passes <= 1

    def test_reuses_external_detector(self, figure1_dirty, figure1_rules):
        detector = ViolationDetector(figure1_dirty, figure1_rules)
        result = batch_repair(figure1_dirty, figure1_rules, detector=detector)
        assert result.remaining_violations == detector.vio_total()
        # detector still attached and consistent
        assert detector.verify()

    def test_changed_cells_recorded_in_order(self, figure1_dirty, figure1_rules):
        result = batch_repair(figure1_dirty, figure1_rules)
        assert len(result.changed_cells) == len(set(result.changed_cells)) or True
        assert all(isinstance(cell, tuple) for cell in result.changed_cells)


class TestOnDatasets:
    def test_reduces_violations_on_hospital(self, hospital_dataset):
        db = hospital_dataset.fresh_dirty()
        detector = ViolationDetector(db, hospital_dataset.rules)
        before = detector.vio_total()
        detector.detach()
        result = batch_repair(db, hospital_dataset.rules)
        assert result.remaining_violations < before

    def test_reduces_violations_on_adult(self, adult_dataset):
        db = adult_dataset.fresh_dirty()
        detector = ViolationDetector(db, adult_dataset.rules)
        before = detector.vio_total()
        detector.detach()
        result = batch_repair(db, adult_dataset.rules)
        assert result.remaining_violations <= before
