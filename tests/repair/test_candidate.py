"""Tests for :mod:`repro.repair.candidate` and the feedback vocabulary."""

import pytest

from repro.repair import CandidateUpdate, Feedback, UserFeedback


class TestCandidateUpdate:
    def test_fields(self):
        update = CandidateUpdate(3, "city", "Fort Wayne", 0.8)
        assert update.tid == 3
        assert update.attribute == "city"
        assert update.value == "Fort Wayne"
        assert update.score == 0.8

    def test_cell(self):
        assert CandidateUpdate(3, "city", "x", 0.5).cell == (3, "city")

    def test_group_key(self):
        update = CandidateUpdate(3, "city", "Fort Wayne", 0.8)
        assert update.group_key == ("city", "Fort Wayne")

    def test_score_bounds_validated(self):
        with pytest.raises(ValueError):
            CandidateUpdate(0, "a", "v", 1.5)
        with pytest.raises(ValueError):
            CandidateUpdate(0, "a", "v", -0.1)

    def test_boundary_scores_valid(self):
        CandidateUpdate(0, "a", "v", 0.0)
        CandidateUpdate(0, "a", "v", 1.0)

    def test_frozen(self):
        update = CandidateUpdate(0, "a", "v", 0.5)
        with pytest.raises(AttributeError):
            update.score = 0.9

    def test_with_score(self):
        update = CandidateUpdate(0, "a", "v", 0.5)
        boosted = update.with_score(1.0)
        assert boosted.score == 1.0
        assert boosted.cell == update.cell
        assert update.score == 0.5

    def test_equality(self):
        assert CandidateUpdate(0, "a", "v", 0.5) == CandidateUpdate(0, "a", "v", 0.5)
        assert CandidateUpdate(0, "a", "v", 0.5) != CandidateUpdate(0, "a", "w", 0.5)

    def test_describe(self):
        text = CandidateUpdate(7, "zip", "46825", 0.4).describe()
        assert "t7" in text and "46825" in text


class TestFeedback:
    def test_three_classes(self):
        assert {f.value for f in Feedback} == {"confirm", "reject", "retain"}

    def test_str(self):
        assert str(Feedback.CONFIRM) == "confirm"


class TestUserFeedback:
    def test_confirm_shorthand(self):
        fb = UserFeedback.confirm()
        assert fb.kind is Feedback.CONFIRM
        assert not fb.has_correction

    def test_reject_plain(self):
        fb = UserFeedback.reject()
        assert fb.kind is Feedback.REJECT
        assert not fb.has_correction

    def test_reject_with_correction(self):
        fb = UserFeedback.reject(correction="Fort Wayne")
        assert fb.has_correction
        assert fb.correction == "Fort Wayne"

    def test_retain_shorthand(self):
        assert UserFeedback.retain().kind is Feedback.RETAIN

    def test_frozen(self):
        fb = UserFeedback.confirm()
        with pytest.raises(AttributeError):
            fb.kind = Feedback.REJECT
