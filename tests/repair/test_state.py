"""Tests for :mod:`repro.repair.state`."""

from repro.repair import CandidateUpdate, RepairState


def _u(tid=0, attr="a", value="v", score=0.5):
    return CandidateUpdate(tid, attr, value, score)


class TestChangeableFlag:
    def test_default_changeable(self):
        state = RepairState()
        assert state.is_changeable((0, "a"))

    def test_freeze(self):
        state = RepairState()
        state.freeze((0, "a"))
        assert not state.is_changeable((0, "a"))

    def test_freeze_drops_suggestion(self):
        state = RepairState()
        state.put(_u())
        state.freeze((0, "a"))
        assert state.get((0, "a")) is None

    def test_frozen_cells_copy(self):
        state = RepairState()
        state.freeze((0, "a"))
        cells = state.frozen_cells()
        cells.clear()
        assert not state.is_changeable((0, "a"))


class TestPreventedValues:
    def test_prevent_and_query(self):
        state = RepairState()
        state.prevent((0, "a"), "bad")
        assert state.is_prevented((0, "a"), "bad")
        assert not state.is_prevented((0, "a"), "good")
        assert state.prevented((0, "a")) == {"bad"}

    def test_prevent_accumulates(self):
        state = RepairState()
        state.prevent((0, "a"), "x")
        state.prevent((0, "a"), "y")
        assert state.prevented((0, "a")) == {"x", "y"}

    def test_prevented_returns_copy(self):
        state = RepairState()
        state.prevent((0, "a"), "x")
        state.prevented((0, "a")).clear()
        assert state.prevented((0, "a")) == {"x"}

    def test_per_cell_isolation(self):
        state = RepairState()
        state.prevent((0, "a"), "x")
        assert state.prevented((0, "b")) == set()


class TestPossibleUpdates:
    def test_put_get(self):
        state = RepairState()
        update = _u()
        state.put(update)
        assert state.get((0, "a")) == update
        assert state.contains(update)

    def test_put_replaces(self):
        state = RepairState()
        state.put(_u(value="v1"))
        state.put(_u(value="v2"))
        assert state.get((0, "a")).value == "v2"
        assert len(state) == 1

    def test_remove(self):
        state = RepairState()
        update = _u()
        state.put(update)
        assert state.remove((0, "a")) == update
        assert state.remove((0, "a")) is None

    def test_discard_only_if_same(self):
        state = RepairState()
        v1 = _u(value="v1")
        v2 = _u(value="v2")
        state.put(v1)
        state.put(v2)  # replaces v1
        assert state.discard(v1) is False
        assert state.discard(v2) is True
        assert len(state) == 0

    def test_updates_sorted_by_cell(self):
        state = RepairState()
        state.put(_u(tid=2))
        state.put(_u(tid=0, attr="b"))
        state.put(_u(tid=0, attr="a"))
        cells = [u.cell for u in state.updates()]
        assert cells == [(0, "a"), (0, "b"), (2, "a")]

    def test_updates_for_tuple(self):
        state = RepairState()
        state.put(_u(tid=1))
        state.put(_u(tid=2))
        assert [u.tid for u in state.updates_for_tuple(1)] == [1]

    def test_clear_updates_keeps_flags(self):
        state = RepairState()
        state.put(_u())
        state.prevent((0, "a"), "bad")
        state.clear_updates()
        assert len(state) == 0
        assert state.is_prevented((0, "a"), "bad")

    def test_reset_forgets_everything(self):
        state = RepairState()
        state.put(_u())
        state.prevent((0, "a"), "bad")
        state.freeze((1, "b"))
        state.reset()
        assert len(state) == 0
        assert not state.is_prevented((0, "a"), "bad")
        assert state.is_changeable((1, "b"))

    def test_repr(self):
        state = RepairState()
        state.put(_u())
        assert "1 updates" in repr(state)
