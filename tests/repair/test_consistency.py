"""Tests for :mod:`repro.repair.consistency` (Appendix A.5)."""

import pytest

from repro.constraints import RuleSet, ViolationDetector, parse_rules
from repro.db import Database, Schema
from repro.repair import (
    ConsistencyManager,
    RepairState,
    UpdateGenerator,
    UserFeedback,
)


@pytest.fixture()
def setup(figure1_dirty, figure1_rules):
    detector = ViolationDetector(figure1_dirty, figure1_rules)
    state = RepairState()
    generator = UpdateGenerator(figure1_dirty, figure1_rules, detector, state)
    manager = ConsistencyManager(figure1_dirty, figure1_rules, detector, state, generator)
    generator.generate_all()
    return figure1_dirty, detector, state, generator, manager


class TestRetain:
    def test_retain_freezes_cell(self, setup):
        db, detector, state, __, manager = setup
        update = state.get((1, "city"))
        result = manager.apply_feedback(update, UserFeedback.retain())
        assert not result.wrote_database
        assert not state.is_changeable((1, "city"))
        assert state.get((1, "city")) is None

    def test_retained_cell_gets_no_new_suggestions(self, setup):
        db, detector, state, generator, manager = setup
        update = state.get((1, "city"))
        manager.apply_feedback(update, UserFeedback.retain())
        assert generator.generate_for_cell(1, "city") is None


class TestReject:
    def test_reject_prevents_value_and_replaces(self, setup):
        db, detector, state, __, manager = setup
        update = state.get((1, "city"))
        rejected_value = update.value
        result = manager.apply_feedback(update, UserFeedback.reject())
        assert not result.wrote_database
        assert state.is_prevented((1, "city"), rejected_value)
        replacement = state.get((1, "city"))
        if replacement is not None:
            assert replacement.value != rejected_value
            assert result.replacement == replacement

    def test_reject_with_correction_applies_it(self, setup):
        db, detector, state, __, manager = setup
        update = state.get((1, "city"))
        result = manager.apply_feedback(
            update, UserFeedback.reject(correction="Michigan City")
        )
        assert result.wrote_database
        assert db.value(1, "city") == "Michigan City"
        assert not state.is_changeable((1, "city"))


class TestConfirm:
    def test_confirm_writes_and_freezes(self, setup):
        db, detector, state, __, manager = setup
        update = state.get((1, "city"))
        result = manager.apply_feedback(update, UserFeedback.confirm())
        assert result.wrote_database
        assert db.value(1, "city") == update.value
        assert not state.is_changeable((1, "city"))

    def test_confirm_records_source(self, figure1_dirty, figure1_rules):
        from repro.db import ChangeLog

        log = ChangeLog(figure1_dirty)
        detector = ViolationDetector(figure1_dirty, figure1_rules)
        state = RepairState()
        generator = UpdateGenerator(figure1_dirty, figure1_rules, detector, state)
        manager = ConsistencyManager(
            figure1_dirty, figure1_rules, detector, state, generator
        )
        generator.generate_all()
        update = state.get((1, "city"))
        manager.apply_feedback(update, UserFeedback.confirm(), source="learner")
        assert log.by_source("learner")

    def test_confirm_invalidates_dependent_updates(self, setup):
        """Paper §3 example: confirming one update regenerates partners'."""
        db, detector, state, __, manager = setup
        # t4 has both a zip suggestion (46825) and possibly others; t5
        # is its phi5 partner. Confirm t4's zip fix and check partner
        # suggestions were revisited against the new instance.
        update = state.get((4, "zip"))
        assert update is not None
        result = manager.apply_feedback(update, UserFeedback.confirm())
        assert result.wrote_database
        # t4 is now consistent with t5 under phi5; no suggestion should
        # propose changing t5's zip to the old wrong value
        leftover = state.get((5, "zip"))
        assert leftover is None or leftover.value != "46391"

    def test_invariants_hold_after_each_feedback(self, setup):
        db, detector, state, __, manager = setup
        for __i in range(10):
            updates = state.updates()
            if not updates:
                break
            manager.apply_feedback(updates[0], UserFeedback.confirm())
            assert manager.check_invariants() == []

    def test_detector_stays_consistent(self, setup):
        db, detector, state, __, manager = setup
        updates = state.updates()
        for update in updates[:5]:
            if state.contains(update):
                manager.apply_feedback(update, UserFeedback.confirm())
        assert detector.verify()


class TestRefreshSuggestions:
    def test_refresh_covers_new_dirty_tuples(self, setup):
        db, detector, state, __, manager = setup
        # manually create a new violation from outside the manager
        db.set_value(3, "city", "Garbage City")
        manager.refresh_suggestions()
        assert any(u.tid == 3 for u in state.updates())

    def test_refresh_prunes_clean_tuples(self, setup):
        db, detector, state, __, manager = setup
        # externally fix the dirty cells of tuple 1
        db.set_value(1, "city", "Michigan City")
        manager.refresh_suggestions()
        assert all(u.tid != 1 for u in state.updates())

    def test_refresh_prunes_suggestions_equal_to_current(self, setup):
        db, detector, state, __, manager = setup
        update = state.get((1, "city"))
        db.set_value(1, "city", update.value)
        manager.refresh_suggestions()
        current = state.get((1, "city"))
        assert current is None or current.value != db.value(1, "city")

    def test_full_feedback_loop_terminates_clean(self, setup, figure1_clean):
        """Driving feedback from ground truth repairs the whole instance."""
        db, detector, state, __, manager = setup
        from repro.core import GroundTruthOracle

        oracle = GroundTruthOracle(figure1_clean)
        for __i in range(200):
            manager.refresh_suggestions()
            updates = state.updates()
            if not updates:
                break
            update = updates[0]
            feedback = oracle.review(update, db.value(*update.cell))
            manager.apply_feedback(update, feedback)
        assert detector.dirty_tuples() == set()
        assert db.equals_data(figure1_clean)
