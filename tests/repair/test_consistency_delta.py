"""Parity tests: O(delta) suggestion refresh vs the full-sweep reference.

Two identical substrates run the same scripted feedback/write scenario;
one refreshes via the delta path, the other via
:meth:`ConsistencyManager.refresh_suggestions_full`. After every round
the live suggestion pools must be identical.
"""

import random

import pytest

from repro.constraints import ViolationDetector
from repro.datasets import load_dataset
from repro.repair import (
    ConsistencyManager,
    Feedback,
    RepairState,
    UpdateGenerator,
    UserFeedback,
)


def _build(n=100, seed=3):
    ds = load_dataset("hospital", n=n, seed=seed)
    db = ds.fresh_dirty()
    detector = ViolationDetector(db, ds.rules)
    state = RepairState()
    generator = UpdateGenerator(db, ds.rules, detector, state)
    manager = ConsistencyManager(db, ds.rules, detector, state, generator)
    generator.generate_all()
    return ds, db, detector, state, generator, manager


class TestDeltaRefreshParity:
    def test_scripted_scenario_stays_identical(self):
        """Same feedback stream, delta vs full refresh → same pools."""
        ds_a, db_a, __, state_a, __, manager_a = _build()
        ds_b, db_b, __, state_b, __, manager_b = _build()
        rng = random.Random(17)
        manager_a.refresh_suggestions()
        manager_b.refresh_suggestions_full()
        assert state_a.updates() == state_b.updates()
        rounds = 0
        while rounds < 30 and len(state_a):
            updates_a = state_a.updates()
            updates_b = state_b.updates()
            assert updates_a == updates_b
            pick = rng.randrange(len(updates_a))
            update = updates_a[pick]
            clean_value = ds_a.clean.value(update.tid, update.attribute)
            roll = rng.random()
            if roll < 0.45:
                feedback = UserFeedback(Feedback.CONFIRM)
            elif roll < 0.7:
                feedback = UserFeedback(Feedback.REJECT, correction=clean_value)
            elif roll < 0.85:
                feedback = UserFeedback(Feedback.REJECT)
            else:
                feedback = UserFeedback(Feedback.RETAIN)
            manager_a.apply_feedback(updates_a[pick], feedback)
            manager_b.apply_feedback(updates_b[pick], feedback)
            manager_a.refresh_suggestions()
            manager_b.refresh_suggestions_full()
            assert state_a.updates() == state_b.updates(), f"diverged at round {rounds}"
            assert state_a.frozen_cells() == state_b.frozen_cells()
            assert db_a.equals_data(db_b)
            rounds += 1
        assert rounds > 10

    def test_external_writes_parity(self):
        __, db_a, __, state_a, __, manager_a = _build(seed=5)
        __, db_b, __, state_b, __, manager_b = _build(seed=5)
        manager_a.refresh_suggestions()
        manager_b.refresh_suggestions_full()
        rng = random.Random(23)
        tids = db_a.tids()
        for __round in range(12):
            tid = tids[rng.randrange(len(tids))]
            attr = rng.choice(["zip", "city", "state"])
            value = rng.choice(["00000", "Ax", "ZZ", "46360"])
            db_a.set_value(tid, attr, value)
            db_b.set_value(tid, attr, value)
            manager_a.refresh_suggestions()
            manager_b.refresh_suggestions_full()
            assert state_a.updates() == state_b.updates(), f"diverged at round {__round}"

    def test_second_refresh_is_noop(self):
        __, __, __, state, __, manager = _build()
        manager.refresh_suggestions()
        pool = state.updates()
        assert manager.refresh_suggestions() == 0
        assert state.updates() == pool

    def test_invariants_hold_after_delta_rounds(self):
        ds, __, __, state, __, manager = _build(seed=9)
        manager.refresh_suggestions()
        rng = random.Random(31)
        for __round in range(15):
            updates = state.updates()
            if not updates:
                break
            update = updates[rng.randrange(len(updates))]
            manager.apply_feedback(update, UserFeedback(Feedback.CONFIRM))
            manager.refresh_suggestions()
            assert manager.check_invariants() == []


class TestUncoveredRetry:
    def test_uncoverable_dirty_tuple_retried_after_domain_change(self):
        """A dirty tuple with no admissible value is retried each round.

        After rejecting every candidate for a cell, the tuple sits dirty
        and uncovered; when the database changes elsewhere and a new
        admissible value appears, the delta refresh must pick it up —
        exactly like the full sweep does.
        """
        from repro.constraints import RuleSet, parse_rules
        from repro.db import Database, Schema

        schema = Schema("r", ["zip", "city"])
        db = Database(
            schema,
            [["46360", "Westville"], ["46360", "Michigan City"], ["46774", "New Haven"]],
        )
        rules = RuleSet(
            parse_rules("(zip -> city, {46360 || 'Michigan City'})"), schema=schema
        )
        detector = ViolationDetector(db, rules)
        state = RepairState()
        generator = UpdateGenerator(db, rules, detector, state)
        manager = ConsistencyManager(db, rules, detector, state, generator)
        generator.generate_all()
        manager.refresh_suggestions()
        # reject the only suggestions for tuple 0 until none remain
        guard = 0
        while state.updates_for_tuple(0) and guard < 10:
            update = state.updates_for_tuple(0)[0]
            manager.apply_feedback(update, UserFeedback(Feedback.REJECT))
            guard += 1
        manager.refresh_suggestions()
        assert detector.is_dirty(0)
        assert not state.covers_tuple(0)
        # no visible change for tuple 0, but each refresh retries it —
        # parity with the full sweep
        assert manager.refresh_suggestions() == 0
        assert not state.covers_tuple(0)


class TestStateIndexConsistency:
    def test_updates_for_tuple_matches_pool_scan(self):
        __, __, __, state, __, manager = _build(seed=13)
        manager.refresh_suggestions()
        pool = state.updates()
        tids = {u.tid for u in pool}
        for tid in tids:
            expected = [u for u in pool if u.tid == tid]
            assert state.updates_for_tuple(tid) == expected
            assert state.covers_tuple(tid)
        assert not state.covers_tuple(max(tids) + 10_000)
