"""Tests for :mod:`repro.repair.generator` (Algorithm 1)."""

import pytest

from repro.constraints import RuleSet, ViolationDetector, parse_rules
from repro.db import Database, Schema
from repro.repair import RepairState, UpdateGenerator


def _build(rows, rules_text, schema_attrs=("zip", "city", "street")):
    schema = Schema("r", list(schema_attrs))
    db = Database(schema, rows)
    rules = RuleSet(parse_rules(rules_text), schema=schema)
    detector = ViolationDetector(db, rules)
    state = RepairState()
    generator = UpdateGenerator(db, rules, detector, state)
    return db, rules, detector, state, generator


class TestScenario1ConstantRHS:
    """B = RHS of a violated constant CFD -> suggest the pattern constant."""

    def test_suggests_pattern_constant(self):
        db, __, __, state, gen = _build(
            [["46360", "Westvile", "Main St"]],
            "(zip -> city, {46360 || 'Michigan City'})",
        )
        update = gen.generate_for_cell(0, "city")
        assert update.value == "Michigan City"
        assert state.get((0, "city")) == update

    def test_score_is_eq7_similarity(self):
        db, __, __, __, gen = _build(
            [["46360", "Michigan Cty", "Main St"]],
            "(zip -> city, {46360 || 'Michigan City'})",
        )
        update = gen.generate_for_cell(0, "city")
        from repro.repair import similarity

        assert update.score == pytest.approx(similarity("Michigan Cty", "Michigan City"))

    def test_zero_similarity_value_still_suggested(self):
        # the paper's own example: 'Westville' -> 'Michigan City'
        db, __, __, __, gen = _build(
            [["46360", "Westville", "Main St"]],
            "(zip -> city, {46360 || 'Michigan City'})",
        )
        update = gen.generate_for_cell(0, "city")
        assert update.value == "Michigan City"
        assert update.score == 0.0


class TestScenario2VariableRHS:
    """B = RHS of a violated variable CFD -> suggest a partner's value."""

    def test_suggests_majority_partner_value(self):
        db, __, __, __, gen = _build(
            [
                ["46391", "Fort Wayne", "Sherden RD"],
                ["46825", "Fort Wayne", "Sherden RD"],
                ["46825", "Fort Wayne", "Sherden RD"],
            ],
            "(street, city -> zip, {-, - || -})",
        )
        update = gen.generate_for_cell(0, "zip")
        assert update.value == "46825"

    def test_no_update_when_group_uniform(self):
        db, __, __, state, gen = _build(
            [
                ["46825", "Fort Wayne", "Sherden RD"],
                ["46825", "Fort Wayne", "Sherden RD"],
            ],
            "(street, city -> zip, {-, - || -})",
        )
        assert gen.generate_for_cell(0, "zip") is None


class TestScenario3LHS:
    """B in LHS of a violated CFD -> best similarity from context pool."""

    def test_pool_from_violated_rule_constants(self):
        db, __, __, __, gen = _build(
            [["46360", "Westvile", "Main St"]],
            "(city -> zip, {'Michigan City' || 46360})",
        )
        # tuple violates nothing: city 'Westvile' doesn't match context
        assert gen.generate_for_cell(0, "city") is None

    def test_pool_from_agreeing_tuples(self):
        db, __, __, __, gen = _build(
            [
                ["46391", "Fort Wayne", "Sherden RD"],
                ["46825", "Fort Wayne", "Sherden RD"],
            ],
            "(street, city -> zip, {-, - || -})",
        )
        # for the street attribute: tuples agreeing on (city, zip) have
        # no alternative street -> best update targets zip instead
        update = gen.generate_for_cell(0, "street")
        assert update is None or update.attribute == "street"


class TestPreventedAndFrozen:
    def test_prevented_value_skipped(self):
        db, __, __, state, gen = _build(
            [["46360", "Westvile", "Main St"]],
            "(zip -> city, {46360 || 'Michigan City'})",
        )
        state.prevent((0, "city"), "Michigan City")
        assert gen.generate_for_cell(0, "city") is None

    def test_frozen_cell_skipped(self):
        db, __, __, state, gen = _build(
            [["46360", "Westvile", "Main St"]],
            "(zip -> city, {46360 || 'Michigan City'})",
        )
        state.freeze((0, "city"))
        assert gen.generate_for_cell(0, "city") is None

    def test_current_value_never_suggested(self):
        db, __, __, __, gen = _build(
            [["46360", "Michigan City", "Main St"]],
            "(zip -> city, {46360 || 'Michigan City'})",
        )
        # tuple satisfies the rule; nothing to suggest
        assert gen.generate_for_cell(0, "city") is None

    def test_clean_tuple_clears_stale_suggestion(self):
        db, __, __, state, gen = _build(
            [["46360", "Westvile", "Main St"]],
            "(zip -> city, {46360 || 'Michigan City'})",
        )
        update = gen.generate_for_cell(0, "city")
        assert update is not None
        db.set_value(0, "city", "Michigan City")
        assert gen.generate_for_cell(0, "city") is None
        assert state.get((0, "city")) is None


class TestGenerateForTuple:
    def test_covers_attributes_of_violated_rules(self, figure1_dirty, figure1_rules):
        detector = ViolationDetector(figure1_dirty, figure1_rules)
        state = RepairState()
        gen = UpdateGenerator(figure1_dirty, figure1_rules, detector, state)
        produced = gen.generate_for_tuple(1)
        attrs = {u.attribute for u in produced}
        assert "city" in attrs  # the erroneous attribute gets a fix
        suggestion = state.get((1, "city"))
        assert suggestion.value == "Michigan City"

    def test_clean_tuple_produces_nothing(self, figure1_dirty, figure1_rules):
        detector = ViolationDetector(figure1_dirty, figure1_rules)
        state = RepairState()
        gen = UpdateGenerator(figure1_dirty, figure1_rules, detector, state)
        assert gen.generate_for_tuple(3) == []

    def test_generate_all_covers_all_dirty(self, figure1_dirty, figure1_rules):
        detector = ViolationDetector(figure1_dirty, figure1_rules)
        state = RepairState()
        gen = UpdateGenerator(figure1_dirty, figure1_rules, detector, state)
        produced = gen.generate_all()
        assert len(produced) == len(state)
        covered = {u.tid for u in produced}
        # every dirty tuple with a derivable fix gets at least one update
        assert covered <= detector.dirty_tuples()
        assert (1, "city") in [u.cell for u in produced]

    def test_figure1_t4_zip_suggestion(self, figure1_dirty, figure1_rules):
        """Paper Appendix A example: t5 (our t4) gets zip 46825 via phi5."""
        detector = ViolationDetector(figure1_dirty, figure1_rules)
        state = RepairState()
        gen = UpdateGenerator(figure1_dirty, figure1_rules, detector, state)
        gen.generate_all()
        update = state.get((4, "zip"))
        assert update is not None
        assert update.value == "46825"

    def test_detach_releases_caches(self, figure1_dirty, figure1_rules):
        detector = ViolationDetector(figure1_dirty, figure1_rules)
        gen = UpdateGenerator(figure1_dirty, figure1_rules, detector, RepairState())
        gen.generate_all()
        assert gen._witness_memo  # scenario-3 lookups populated the memo
        gen.detach()
        assert gen._witness_memo == {}


class TestCacheStats:
    """All three memos are bounded and observable (repolint cache-discipline)."""

    def test_stats_surface_and_reuse(self, figure1_dirty, figure1_rules):
        detector = ViolationDetector(figure1_dirty, figure1_rules)
        gen = UpdateGenerator(figure1_dirty, figure1_rules, detector, RepairState())
        gen.generate_all()
        stats = gen.stats
        for memo in ("witness", "rhs", "decision"):
            assert stats[f"{memo}_memo_capacity"] > 0
            assert stats[f"{memo}_memo_size"] >= 0
        assert stats["witness_memo_misses"] >= 1
        # a second pass over the unchanged instance reuses the memos
        gen.generate_all()
        again = gen.stats
        assert (
            again["witness_memo_hits"] > stats["witness_memo_hits"]
            or again["decision_memo_hits"] > stats["decision_memo_hits"]
        )

    def test_witness_memo_is_bounded(self, figure1_dirty, figure1_rules, monkeypatch):
        from repro.repair import generator as generator_module

        monkeypatch.setattr(generator_module, "_WITNESS_MEMO_CAPACITY", 1)
        detector = ViolationDetector(figure1_dirty, figure1_rules)
        gen = UpdateGenerator(figure1_dirty, figure1_rules, detector, RepairState())
        gen.generate_all()
        assert len(gen._witness_memo) <= 1
        assert gen.stats["witness_memo_clears"] >= 1
