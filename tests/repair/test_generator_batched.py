"""Batched suggestion-engine tests: `generate_for_cells` vs the scalar path."""

import pytest

from repro.constraints import RuleSet, ViolationDetector, parse_rules
from repro.datasets import load_dataset
from repro.db import Database, Schema
from repro.repair import RepairState, SimilarityCache, UpdateGenerator


def _substrate(ds, batched, sim=None):
    db = ds.fresh_dirty()
    detector = ViolationDetector(db, ds.rules)
    state = RepairState()
    kwargs = {"batched": batched}
    if sim is not None:
        kwargs["sim"] = sim
    generator = UpdateGenerator(db, ds.rules, detector, state, **kwargs)
    return db, detector, state, generator


def _pool(state):
    return {u.cell: (u.value, u.score) for u in state.updates()}


@pytest.mark.parametrize("dataset,n", [("hospital", 200), ("adult", 150)])
def test_generate_all_matches_scalar(dataset, n):
    ds = load_dataset(dataset, n=n, seed=11)
    __, __, state_b, gen_b = _substrate(ds, batched=True)
    __, __, state_s, gen_s = _substrate(ds, batched=False)
    produced_b = gen_b.generate_all()
    produced_s = gen_s.generate_all()
    assert [u.cell for u in produced_b] == [u.cell for u in produced_s]
    assert [(u.value, u.score) for u in produced_b] == [
        (u.value, u.score) for u in produced_s
    ]
    assert _pool(state_b) == _pool(state_s)


def test_generate_all_matches_scalar_with_code_space_cache():
    ds = load_dataset("hospital", n=150, seed=3)
    db = ds.fresh_dirty()
    detector = ViolationDetector(db, ds.rules)
    state_b = RepairState()
    cache = SimilarityCache(db.columns)
    gen_b = UpdateGenerator(db, ds.rules, detector, state_b, sim=cache, batched=True)
    gen_b.generate_all()
    __, __, state_s, gen_s = _substrate(ds, batched=False)
    gen_s.generate_all()
    assert _pool(state_b) == _pool(state_s)
    assert cache.stats["hits"] + cache.stats["misses"] > 0


def test_generate_for_cells_interleaves_like_per_cell_calls():
    ds = load_dataset("hospital", n=120, seed=5)
    db, detector, state, gen = _substrate(ds, batched=True)
    dirty = list(detector.dirty_tuples_ordered())[:10]
    cells = []
    for tid in dirty:
        for rule in detector.violated_rules(tid):
            for attr in rule.attributes:
                if (tid, attr) not in cells:
                    cells.append((tid, attr))
    results = gen.generate_for_cells(cells)
    assert len(results) == len(cells)
    # aligned: result i concerns cell i
    for cell, update in zip(cells, results):
        if update is not None:
            assert update.cell == cell
            assert state.get(cell) == update


def test_prevented_cell_not_shared_with_witness_twin():
    """Two identical tuples: preventing one cell's best value must not
    leak into the twin's decision (and vice versa)."""
    rows = [["46360", "Westvile"], ["46360", "Westvile"]]
    schema = Schema("r", ["zip", "city"])
    db = Database(schema, rows)
    rules = RuleSet(parse_rules("(zip -> city, {46360 || 'Michigan City'})"))
    detector = ViolationDetector(db, rules)
    state = RepairState()
    gen = UpdateGenerator(db, rules, detector, state, batched=True)
    state.prevent((0, "city"), "Michigan City")
    results = gen.generate_for_cells([(0, "city"), (1, "city")])
    assert results[0] is None  # only candidate prevented
    assert results[1] is not None and results[1].value == "Michigan City"


def test_witness_twins_share_one_decision():
    ds = load_dataset("hospital", n=100, seed=2)
    db, detector, state, gen = _substrate(ds, batched=True)
    gen.generate_all()
    # duplicate a dirty tuple's suggestion situation: regenerate twice,
    # then cross-check the scalar path agrees cell by cell
    __, __, state_s, gen_s = _substrate(ds, batched=False)
    gen_s.generate_all()
    assert _pool(state) == _pool(state_s)


class TestRhsHistogramMemo:
    def _build(self):
        rows = [
            ["46391", "Fort Wayne", "Sherden RD"],
            ["46825", "Fort Wayne", "Sherden RD"],
            ["46825", "Fort Wayne", "Sherden RD"],
        ]
        schema = Schema("r", ["zip", "city", "street"])
        db = Database(schema, rows)
        rules = RuleSet(parse_rules("(street, city -> zip, {-, - || -})"), schema=schema)
        detector = ViolationDetector(db, rules)
        state = RepairState()
        gen = UpdateGenerator(db, rules, detector, state, batched=True)
        return db, rules, detector, gen

    def test_partition_shares_one_histogram(self):
        db, rules, detector, gen = self._build()
        rule = next(iter(rules))
        first = gen._values_for_rhs(0, rule)
        assert first == ["46825"]
        assert len(gen._rhs_memo) == 1
        # the partner tuple reuses the same memo entry, filtered by its
        # own current value
        assert gen._values_for_rhs(1, rule) == ["46391"]
        assert len(gen._rhs_memo) == 1

    def test_stats_version_move_invalidates(self):
        db, rules, detector, gen = self._build()
        rule = next(iter(rules))
        assert gen._values_for_rhs(0, rule) == ["46825"]
        (memo_version, __), = gen._rhs_memo.values()
        db.set_value(2, "zip", "46391")
        # partition histogram is now {46391: 2, 46825: 1}; tuple 1
        # (current 46825) must see the re-ranked, re-filtered list
        assert gen._values_for_rhs(1, rule) == ["46391"]
        assert gen._values_for_rhs(0, rule) == ["46825"]
        (new_version, __), = gen._rhs_memo.values()
        assert new_version != memo_version

    def test_memo_capacity_clears(self):
        import repro.repair.generator as gen_mod

        db, rules, detector, gen = self._build()
        rule = next(iter(rules))
        gen._values_for_rhs(0, rule)
        old_capacity = gen_mod._RHS_MEMO_CAPACITY
        try:
            gen_mod._RHS_MEMO_CAPACITY = 0
            gen._rhs_memo.clear()
            gen._values_for_rhs(0, rule)
            assert len(gen._rhs_memo) <= 1
        finally:
            gen_mod._RHS_MEMO_CAPACITY = old_capacity

    def test_detach_clears_all_memos(self):
        db, rules, detector, gen = self._build()
        rule = next(iter(rules))
        gen._values_for_rhs(0, rule)
        gen.generate_for_tuple(0)
        gen.detach()
        assert gen._rhs_memo == {}
        assert gen._witness_memo == {}
        assert gen._witness_positions == {}


class TestCrossBatchDecisionMemo:
    def test_repeat_pass_skips_selection(self, monkeypatch):
        ds = load_dataset("hospital", n=120, seed=4)
        db, detector, state, gen = _substrate(ds, batched=True)
        gen.generate_all()
        assert gen._decision_memo
        stamp = gen._decision_stamp
        assert stamp == (db.version, detector.stats_epoch)
        calls = []
        monkeypatch.setattr(
            gen,
            "_select_best",
            lambda *a, **k: calls.append(1) or (None, -1.0),
        )
        # substrate unchanged: the second pass must answer every
        # unprevented cell from the carried memo
        before = _pool(state)
        gen.generate_all()
        assert calls == []
        assert _pool(state) == before
        assert gen._decision_stamp == stamp

    def test_db_write_invalidates(self):
        ds = load_dataset("hospital", n=120, seed=4)
        db, detector, state, gen = _substrate(ds, batched=True)
        gen.generate_all()
        stamp = gen._decision_stamp
        tid = next(iter(detector.dirty_tuples()))
        db.set_value(tid, "complaint", "unrelated-write")
        gen.generate_all()
        assert gen._decision_stamp != stamp
        assert gen._decision_stamp == (db.version, detector.stats_epoch)

    def test_carried_memo_matches_scalar_after_writes(self):
        # identical write sequence through one long-lived batched
        # generator (memo carried and invalidated across passes) and a
        # long-lived scalar reference; pools must agree after every pass
        ds = load_dataset("hospital", n=120, seed=9)
        db_b, det_b, state_b, gen_b = _substrate(ds, batched=True)
        db_s, det_s, state_s, gen_s = _substrate(ds, batched=False)
        gen_b.generate_all()
        gen_s.generate_all()
        assert _pool(state_b) == _pool(state_s)
        victims = list(det_b.dirty_tuples_ordered())[:5]
        for tid in victims:
            updates = state_b.updates_for_tuple(tid)
            if not updates:
                continue
            update = updates[0]
            db_b.set_value(update.tid, update.attribute, update.value)
            db_s.set_value(update.tid, update.attribute, update.value)
            gen_b.generate_all()
            gen_s.generate_all()
            assert _pool(state_b) == _pool(state_s)

    def test_capacity_clears(self, monkeypatch):
        import repro.repair.generator as gen_mod

        ds = load_dataset("hospital", n=80, seed=4)
        __, __, __, gen = _substrate(ds, batched=True)
        monkeypatch.setattr(gen_mod, "_DECISION_MEMO_CAPACITY", 1)
        gen.generate_all()
        assert len(gen._decision_memo) <= 1

    def test_detach_clears(self):
        ds = load_dataset("hospital", n=80, seed=4)
        __, __, __, gen = _substrate(ds, batched=True)
        gen.generate_all()
        gen.detach()
        assert gen._decision_memo == {}
        assert gen._decision_stamp == (-1, -1)


def test_regeneration_after_writes_matches_scalar():
    """Drive identical write sequences through both modes and compare
    the regenerated pools after every write."""
    ds = load_dataset("hospital", n=120, seed=9)
    db_b, det_b, state_b, gen_b = _substrate(ds, batched=True)
    db_s, det_s, state_s, gen_s = _substrate(ds, batched=False)
    gen_b.generate_all()
    gen_s.generate_all()
    victims = list(det_b.dirty_tuples_ordered())[:8]
    for tid in victims:
        update_b = state_b.updates_for_tuple(tid)
        update_s = state_s.updates_for_tuple(tid)
        assert [(u.cell, u.value, u.score) for u in update_b] == [
            (u.cell, u.value, u.score) for u in update_s
        ]
        if not update_b:
            continue
        cell = update_b[0].cell
        db_b.set_value(*cell, update_b[0].value)
        db_s.set_value(*cell, update_s[0].value)
        regen_b = gen_b.generate_for_tuple(tid)
        regen_s = gen_s.generate_for_tuple(tid)
        assert [(u.cell, u.value, u.score) for u in regen_b] == [
            (u.cell, u.value, u.score) for u in regen_s
        ]
        assert _pool(state_b) == _pool(state_s)
