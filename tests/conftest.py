"""Shared fixtures: the paper's Figure 1 example and small datasets."""

from __future__ import annotations

import copy

import pytest

from repro.constraints import RuleSet, parse_rules
from repro.datasets import load_dataset
from repro.db import Database, Schema

FIGURE1_ATTRS = ["name", "src", "street", "city", "state", "zip"]

# A Figure 1-like instance: the clean version of the paper's example
# relation (same cities/zips as the paper's tableau).
FIGURE1_CLEAN_ROWS = [
    ["Jim", "H1", "Redwood Dr", "Michigan City", "IN", "46360"],
    ["Tom", "H2", "Redwood Dr", "Michigan City", "IN", "46360"],
    ["Ann", "H2", "Main St", "Michigan City", "IN", "46360"],
    ["Sue", "H2", "Oak Ave", "Michigan City", "IN", "46360"],
    ["Joe", "H3", "Sherden RD", "Fort Wayne", "IN", "46825"],
    ["Max", "H3", "Sherden RD", "Fort Wayne", "IN", "46825"],
    ["Pat", "H4", "Bell Ave", "New Haven", "IN", "46774"],
    ["Ken", "H4", "Bell Ave", "New Haven", "IN", "46774"],
]

FIGURE1_RULES_TEXT = """
phi1: (zip -> city, state, {46360 || 'Michigan City', IN})
phi2: (zip -> city, state, {46774 || 'New Haven', IN})
phi3: (zip -> city, state, {46825 || 'Fort Wayne', IN})
phi4: (zip -> city, state, {46391 || 'Westville', IN})
phi5: (street, city -> zip, {-, - || -})
"""


def make_figure1_dirty_rows() -> list[list[str]]:
    """The clean rows with four planted errors (as in the paper's intro)."""
    rows = copy.deepcopy(FIGURE1_CLEAN_ROWS)
    rows[1][3] = "Westville"  # t1: wrong city for zip 46360
    rows[2][3] = "Westvile"  # t2: misspelled city
    rows[4][5] = "46391"  # t4: wrong zip for Fort Wayne street pair
    rows[6][3] = "FT Wayne"  # t6: recurrent-mistake abbreviation
    return rows


@pytest.fixture()
def figure1_schema() -> Schema:
    """Schema of the Figure 1 example relation."""
    return Schema("customer", FIGURE1_ATTRS)


@pytest.fixture()
def figure1_clean(figure1_schema) -> Database:
    """The clean Figure 1 instance."""
    return Database(figure1_schema, copy.deepcopy(FIGURE1_CLEAN_ROWS))


@pytest.fixture()
def figure1_dirty(figure1_schema) -> Database:
    """The dirty Figure 1 instance (four planted errors)."""
    return Database(figure1_schema, make_figure1_dirty_rows())


@pytest.fixture()
def figure1_rules(figure1_schema) -> RuleSet:
    """The Figure 1 rule set in normal form."""
    return RuleSet(parse_rules(FIGURE1_RULES_TEXT), schema=figure1_schema)


@pytest.fixture(scope="session")
def hospital_dataset():
    """A small hospital (Dataset 1 analogue) instance, shared per session."""
    return load_dataset("hospital", n=300, seed=11)


@pytest.fixture(scope="session")
def adult_dataset():
    """A small adult (Dataset 2 analogue) instance, shared per session."""
    return load_dataset("adult", n=300, seed=11)
