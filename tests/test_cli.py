"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import main
from repro.db import load_csv


@pytest.fixture()
def workspace(tmp_path):
    csv_path = tmp_path / "data.csv"
    csv_path.write_text(
        "zip,city\n"
        "46360,Michigan City\n"
        "46360,Westvile\n"
        "46360,Michigan City\n"
        "46825,Fort Wayne\n"
    )
    rules_path = tmp_path / "rules.txt"
    rules_path.write_text(
        "phi1: (zip -> city, {46360 || 'Michigan City'})\n"
        "phi3: (zip -> city, {46825 || 'Fort Wayne'})\n"
    )
    return tmp_path, csv_path, rules_path


class TestCheck:
    def test_reports_violations(self, workspace, capsys):
        __, csv_path, rules_path = workspace
        code = main(["check", str(csv_path), str(rules_path)])
        out = capsys.readouterr().out
        assert code == 1  # dirty tuples found
        assert "1 dirty tuples" in out
        assert "Michigan City" in out

    def test_clean_file_returns_zero(self, workspace, capsys):
        tmp_path, __, rules_path = workspace
        clean_csv = tmp_path / "clean.csv"
        clean_csv.write_text("zip,city\n46360,Michigan City\n")
        assert main(["check", str(clean_csv), str(rules_path)]) == 0

    def test_limit_truncates(self, workspace, capsys):
        tmp_path, __, rules_path = workspace
        many = tmp_path / "many.csv"
        rows = "\n".join("46360,Wrong" for __i in range(12))
        many.write_text(f"zip,city\n{rows}\n")
        main(["check", str(many), str(rules_path), "--limit", "2"])
        out = capsys.readouterr().out
        assert "and 10 more" in out


class TestClean:
    def test_repairs_and_writes(self, workspace, capsys):
        tmp_path, csv_path, rules_path = workspace
        out_path = tmp_path / "repaired.csv"
        code = main(["clean", str(csv_path), str(rules_path), "--output", str(out_path)])
        assert code == 0
        repaired = load_csv(out_path)
        assert repaired.value(1, "city") == "Michigan City"


class TestDiscover:
    def test_prints_and_writes_rules(self, workspace, capsys):
        tmp_path, csv_path, __ = workspace
        out_path = tmp_path / "mined.txt"
        code = main(
            ["discover", str(csv_path), "--output", str(out_path), "--support", "0.4",
             "--confidence", "0.6"]
        )
        assert code == 0
        assert out_path.exists()
        text = out_path.read_text()
        assert "->" in text

    def test_discovered_rules_are_parseable(self, workspace):
        tmp_path, csv_path, __ = workspace
        out_path = tmp_path / "mined.txt"
        main(["discover", str(csv_path), "--output", str(out_path), "--support", "0.4",
              "--confidence", "0.6"])
        from repro.constraints.parser import load_rules

        assert len(load_rules(out_path)) > 0


class TestExplain:
    def test_explains_tuples(self, workspace, capsys):
        __, csv_path, rules_path = workspace
        code = main(["explain", str(csv_path), str(rules_path), "1", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "t1" in out and "violation" in out
        assert "t0: clean" in out


class TestGuided:
    def test_guided_with_scripted_answers(self, workspace, monkeypatch, capsys):
        tmp_path, csv_path, rules_path = workspace
        out_path = tmp_path / "repaired.csv"
        answers = iter(["c"] * 20)
        monkeypatch.setattr("builtins.input", lambda __prompt="": next(answers))
        code = main(
            ["guided", str(csv_path), str(rules_path), "--output", str(out_path),
             "--budget", "5"]
        )
        assert code == 0
        assert out_path.exists()
