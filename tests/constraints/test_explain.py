"""Tests for :mod:`repro.constraints.explain`."""

import pytest

from repro.constraints import RuleSet, ViolationDetector, explain_tuple, parse_rules
from repro.db import Database, Schema


@pytest.fixture()
def setting():
    schema = Schema("r", ["zip", "city", "street"])
    db = Database(
        schema,
        [
            ["46360", "Westvile", "Main St"],
            ["46360", "Michigan City", "Main St"],
            ["46825", "Fort Wayne", "Oak Ave"],
            ["46825", "Fort Wayne", "Oak Ave"],
        ],
    )
    rules = RuleSet(
        parse_rules(
            """
            phi1: (zip -> city, {46360 || 'Michigan City'})
            phi5: (street -> zip, {- || -})
            """
        )
    )
    detector = ViolationDetector(db, rules)
    return db, rules, detector


class TestExplainTuple:
    def test_clean_tuple(self, setting):
        __, __r, detector = setting
        explanation = explain_tuple(detector, 2)
        assert not explanation.is_dirty
        assert "clean" in explanation.describe()

    def test_constant_violation(self, setting):
        __, __r, detector = setting
        explanation = explain_tuple(detector, 0)
        assert explanation.is_dirty
        kinds = {v.kind for v in explanation.violations}
        assert "constant" in kinds
        constant = next(v for v in explanation.violations if v.kind == "constant")
        assert constant.expected == "Michigan City"
        assert constant.actual == "Westvile"

    def test_variable_violation_lists_partners(self, setting):
        db, __r, detector = setting
        db.set_value(0, "zip", "99999")  # Main St group now conflicted
        explanation = explain_tuple(detector, 1)
        variable = next(v for v in explanation.violations if v.kind == "variable")
        assert variable.partners == (0,)
        assert "t0" in variable.describe()

    def test_describe_mentions_rule_text(self, setting):
        __, __r, detector = setting
        text = explain_tuple(detector, 0).describe()
        assert "zip -> city" in text
        assert "Michigan City" in text

    def test_values_snapshot_included(self, setting):
        __, __r, detector = setting
        explanation = explain_tuple(detector, 0)
        assert explanation.values["city"] == "Westvile"

    def test_partner_overflow_ellipsis(self):
        schema = Schema("r", ["street", "zip"])
        rows = [["Main St", "1"]] + [["Main St", "2"]] * 8
        db = Database(schema, rows)
        rules = RuleSet(parse_rules("(street -> zip, {- || -})"))
        detector = ViolationDetector(db, rules)
        explanation = explain_tuple(detector, 1)
        text = explanation.describe()
        assert "..." not in text  # only 1 partner for tid=1 (tid 0)
        explanation = explain_tuple(detector, 0)
        assert "..." in explanation.describe()  # 8 partners, 5 shown
