"""Tests for :mod:`repro.constraints.discovery`."""

import pytest

from repro.constraints import (
    discover_rules,
    discover_variable_cfds,
    fd_violation_rate,
    mine_constant_cfds,
)
from repro.db import Database, Schema
from repro.errors import ConfigError


@pytest.fixture()
def functional_db():
    """zip -> city holds exactly; city -> zip does not (Fort Wayne has 2)."""
    schema = Schema("r", ["zip", "city", "noise"])
    rows = []
    for i in range(30):
        rows.append(["46360", "Michigan City", f"n{i}"])
    for i in range(30):
        rows.append(["46825", "Fort Wayne", f"n{i}"])
    for i in range(30):
        rows.append(["46802", "Fort Wayne", f"n{i}"])
    return Database(schema, rows)


class TestMineConstantCfds:
    def test_finds_planted_rules(self, functional_db):
        rules = mine_constant_cfds(functional_db, support=0.2, confidence=1.0, max_lhs=1)
        found = {
            (r.lhs, r.pattern.value(r.lhs[0]), r.rhs, r.rhs_constant) for r in rules
        }
        assert (("zip",), "46360", "city", "Michigan City") in found
        assert (("zip",), "46825", "city", "Fort Wayne") in found

    def test_support_threshold_prunes(self, functional_db):
        rules = mine_constant_cfds(functional_db, support=0.5, confidence=1.0, max_lhs=1)
        lhs_values = {r.pattern.value(r.lhs[0]) for r in rules if r.lhs == ("zip",)}
        assert "46360" not in lhs_values  # 30/90 < 0.5

    def test_confidence_tolerates_dirt(self, functional_db):
        functional_db.set_value(0, "city", "TYPO")
        strict = mine_constant_cfds(functional_db, support=0.2, confidence=1.0, max_lhs=1)
        tolerant = mine_constant_cfds(functional_db, support=0.2, confidence=0.9, max_lhs=1)
        strict_zip_rules = [r for r in strict if r.lhs == ("zip",) and r.rhs == "city"]
        tolerant_zip_rules = [r for r in tolerant if r.lhs == ("zip",) and r.rhs == "city"]
        assert len(tolerant_zip_rules) > len(strict_zip_rules)

    def test_minimality_prunes_supersets(self, functional_db):
        rules = mine_constant_cfds(functional_db, support=0.2, confidence=1.0, max_lhs=2)
        # no rule should have a redundant LHS extension of zip -> city
        for rule in rules:
            if rule.rhs == "city" and "zip" in rule.lhs:
                assert rule.lhs == ("zip",)

    def test_max_rules_cap(self, functional_db):
        rules = mine_constant_cfds(functional_db, support=0.1, confidence=0.9, max_rules=2)
        assert len(rules) <= 2

    def test_empty_database(self):
        db = Database(Schema("r", ["a", "b"]))
        assert mine_constant_cfds(db) == []

    @pytest.mark.parametrize(
        "kwargs",
        [{"support": 0.0}, {"support": 1.5}, {"confidence": 0.0}, {"max_lhs": 0}],
    )
    def test_invalid_params(self, functional_db, kwargs):
        with pytest.raises(ConfigError):
            mine_constant_cfds(functional_db, **kwargs)

    def test_deterministic(self, functional_db):
        a = mine_constant_cfds(functional_db, support=0.2, confidence=0.95)
        b = mine_constant_cfds(functional_db, support=0.2, confidence=0.95)
        assert a == b


class TestFdViolationRate:
    def test_perfect_fd(self, functional_db):
        assert fd_violation_rate(functional_db, ["zip"], "city") == 0.0

    def test_minority_fraction(self):
        schema = Schema("r", ["a", "b"])
        db = Database(schema, [["k", "x"], ["k", "x"], ["k", "y"], ["k", "x"]])
        assert fd_violation_rate(db, ["a"], "b") == pytest.approx(0.25)

    def test_empty(self):
        db = Database(Schema("r", ["a", "b"]))
        assert fd_violation_rate(db, ["a"], "b") == 0.0

    def test_non_fd_is_high(self, functional_db):
        # noise attribute is nearly a key; city -> noise deviates a lot
        assert fd_violation_rate(functional_db, ["city"], "noise") > 0.5


class TestDiscoverVariableCfds:
    def test_finds_true_fd(self, functional_db):
        rules = discover_variable_cfds(functional_db, max_violation_rate=0.05)
        pairs = {(r.lhs, r.rhs) for r in rules}
        assert (("zip",), "city") in pairs

    def test_rejects_non_fd(self, functional_db):
        rules = discover_variable_cfds(functional_db, max_violation_rate=0.05)
        pairs = {(r.lhs, r.rhs) for r in rules}
        assert (("city",), "zip") not in pairs  # Fort Wayne has two zips

    def test_skips_key_like_lhs(self, functional_db):
        rules = discover_variable_cfds(functional_db, max_violation_rate=0.5)
        assert all(r.lhs != ("noise",) for r in rules)

    def test_reduction_filter_rejects_skewed_independent_column(self):
        schema = Schema("r", ["group", "skewed"])
        rows = []
        for i in range(100):
            rows.append([f"g{i % 4}", "common" if i % 10 else "rare"])
        db = Database(schema, rows)
        rules = discover_variable_cfds(db, max_violation_rate=0.3, min_reduction=0.5)
        assert all(r.rhs != "skewed" for r in rules)

    def test_explicit_candidates(self, functional_db):
        rules = discover_variable_cfds(
            functional_db, candidates=[(["zip"], "city")], max_violation_rate=0.05
        )
        assert len(rules) == 1
        assert rules[0].is_variable


class TestDiscoverRules:
    def test_combined(self, functional_db):
        rules = discover_rules(functional_db, support=0.2, confidence=0.95, max_lhs=1)
        assert len(rules.constant_rules) > 0
        assert len(rules.variable_rules) > 0

    def test_constants_only(self, functional_db):
        rules = discover_rules(
            functional_db, support=0.2, confidence=0.95, include_variable=False
        )
        assert rules.variable_rules == []

    def test_validates_schema(self, functional_db):
        rules = discover_rules(functional_db, support=0.2)
        for rule in rules:
            rule.validate_schema(functional_db.schema)
