"""Tests for :mod:`repro.constraints.repository`."""

import pytest

from repro.constraints import ANY, CFD, RuleSet, parse_rules
from repro.db import Schema
from repro.errors import RuleError


def _rules():
    return parse_rules(
        """
        phi1: (zip -> city, {46360 || 'Michigan City'})
        phi2: (zip -> state, {46360 || IN})
        phi5: (street, city -> zip, {-, - || -})
        """
    )


class TestRuleSetConstruction:
    def test_len_and_iteration(self):
        rs = RuleSet(_rules())
        assert len(rs) == 3
        assert [r.name for r in rs] == ["phi1", "phi2", "phi5"]

    def test_indexing(self):
        rs = RuleSet(_rules())
        assert rs[0].name == "phi1"

    def test_unnamed_rules_get_names(self):
        rs = RuleSet([CFD(["a"], "b", {"a": "1", "b": "2"})])
        assert rs[0].name == "phi1"

    def test_duplicate_rule_rejected(self):
        rule = CFD(["a"], "b", {"a": "1", "b": "2"})
        clone = CFD(["a"], "b", {"a": "1", "b": "2"})
        with pytest.raises(RuleError):
            RuleSet([rule, clone])

    def test_duplicate_name_rejected(self):
        a = CFD(["a"], "b", {"a": "1", "b": "2"}, name="x")
        b = CFD(["a"], "b", {"a": "1", "b": "3"}, name="x")
        with pytest.raises(RuleError):
            RuleSet([a, b])

    def test_schema_validation(self):
        with pytest.raises(KeyError):
            RuleSet(_rules(), schema=Schema("r", ["zip", "city"]))

    def test_contains(self):
        rules = _rules()
        rs = RuleSet(rules)
        assert rules[0] in rs


class TestRuleSetRouting:
    def test_rules_with_rhs(self):
        rs = RuleSet(_rules())
        assert [r.name for r in rs.rules_with_rhs("city")] == ["phi1"]
        assert rs.rules_with_rhs("nothing") == []

    def test_rules_touching(self):
        rs = RuleSet(_rules())
        names = {r.name for r in rs.rules_touching("zip")}
        assert names == {"phi1", "phi2", "phi5"}

    def test_rules_with_lhs_attr(self):
        rs = RuleSet(_rules())
        assert [r.name for r in rs.rules_with_lhs_attr("street")] == ["phi5"]
        assert [r.name for r in rs.rules_with_lhs_attr("city")] == ["phi5"]

    def test_by_name(self):
        rs = RuleSet(_rules())
        assert rs.by_name("phi2").rhs == "state"
        with pytest.raises(RuleError):
            rs.by_name("nope")

    def test_constant_and_variable_partitions(self):
        rs = RuleSet(_rules())
        assert [r.name for r in rs.constant_rules] == ["phi1", "phi2"]
        assert [r.name for r in rs.variable_rules] == ["phi5"]

    def test_attributes(self):
        rs = RuleSet(_rules())
        assert rs.attributes() == {"zip", "city", "state", "street"}

    def test_constants_for_attribute(self):
        rs = RuleSet(_rules())
        assert rs.constants_for_attribute("city") == {"Michigan City"}
        assert rs.constants_for_attribute("zip") == {"46360"}
        assert rs.constants_for_attribute("street") == set()

    def test_routing_returns_copies(self):
        rs = RuleSet(_rules())
        rs.rules_with_rhs("city").clear()
        assert len(rs.rules_with_rhs("city")) == 1

    def test_repr(self):
        rs = RuleSet(_rules())
        assert "2 constant" in repr(rs)
        assert "1 variable" in repr(rs)


class TestRuleSetWithAny:
    def test_wildcard_lhs_constant_rhs(self):
        rule = CFD(["a"], "b", {"a": ANY, "b": "k"})
        rs = RuleSet([rule])
        assert rs.constant_rules == [rule]
        assert rs.constants_for_attribute("b") == {"k"}
