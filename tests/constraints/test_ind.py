"""Tests for :mod:`repro.constraints.ind` (the §7 CIND extension)."""

import pytest

from repro.constraints import ANY
from repro.constraints.ind import IND, check_ind
from repro.db import Database, Schema
from repro.errors import RuleError, UnknownAttributeError


@pytest.fixture()
def relations():
    visits = Database(
        Schema("visits", ["hospital", "zip", "state"]),
        [
            ["H1", "46360", "IN"],
            ["H2", "99999", "IN"],
            ["H3", "46825", "IN"],
            ["H4", "10001", "NY"],
        ],
    )
    gazetteer = Database(
        Schema("gazetteer", ["zip_code", "st"]),
        [["46360", "IN"], ["46825", "IN"], ["10001", "NY"]],
    )
    return visits, gazetteer


class TestINDConstruction:
    def test_basic(self):
        ind = IND(["zip"], ["zip_code"])
        assert ind.arity == 1
        assert not ind.is_conditional

    def test_multi_attribute(self):
        ind = IND(["zip", "state"], ["zip_code", "st"])
        assert ind.arity == 2

    def test_arity_mismatch_rejected(self):
        with pytest.raises(RuleError):
            IND(["zip", "state"], ["zip_code"])

    def test_empty_rejected(self):
        with pytest.raises(RuleError):
            IND([], [])

    def test_duplicates_rejected(self):
        with pytest.raises(RuleError):
            IND(["zip", "zip"], ["a", "b"])

    def test_conditional_flag(self):
        ind = IND(["zip"], ["zip_code"], child_pattern={"state": "IN"})
        assert ind.is_conditional

    def test_repr(self):
        ind = IND(["zip"], ["zip_code"], name="fk")
        assert "fk" in repr(ind)


class TestCheckInd:
    def test_unconditional_violations(self, relations):
        visits, gazetteer = relations
        ind = IND(["zip"], ["zip_code"])
        assert check_ind(visits, gazetteer, ind) == {1}

    def test_multi_attribute_correspondence(self, relations):
        visits, gazetteer = relations
        ind = IND(["zip", "state"], ["zip_code", "st"])
        assert check_ind(visits, gazetteer, ind) == {1}

    def test_child_pattern_restricts_scope(self, relations):
        visits, gazetteer = relations
        gazetteer.delete(2)  # remove the NY entry: t3 now dangling...
        ind = IND(["zip"], ["zip_code"], child_pattern={"state": "IN"})
        # ...but the condition only covers IN tuples, so t3 is exempt
        assert check_ind(visits, gazetteer, ind) == {1}

    def test_parent_pattern_restricts_targets(self, relations):
        visits, gazetteer = relations
        ind = IND(["zip"], ["zip_code"], parent_pattern={"st": "IN"})
        # the NY parent entry no longer counts as a target
        assert check_ind(visits, gazetteer, ind) == {1, 3}

    def test_satisfied_ind(self, relations):
        visits, gazetteer = relations
        visits.set_value(1, "zip", "46825")
        ind = IND(["zip"], ["zip_code"])
        assert check_ind(visits, gazetteer, ind) == set()

    def test_unknown_attribute_raises(self, relations):
        visits, gazetteer = relations
        with pytest.raises(UnknownAttributeError):
            check_ind(visits, gazetteer, IND(["nope"], ["zip_code"]))

    def test_wildcard_pattern_entries(self, relations):
        visits, gazetteer = relations
        ind = IND(["zip"], ["zip_code"], child_pattern={"state": ANY})
        assert check_ind(visits, gazetteer, ind) == {1}
