"""Tests for the detector's delta machinery: dirty-set cursors,
per-attribute stats versions and the write-plan dispatch."""

import random

import pytest

from repro.constraints import DirtyDelta, RuleSet, ViolationDetector, parse_rules
from repro.datasets import load_dataset
from repro.db import Database, Schema


@pytest.fixture()
def small():
    schema = Schema("r", ["zip", "city", "state"])
    db = Database(
        schema,
        [
            ["46360", "Westville", "IN"],
            ["46360", "Michigan City", "IN"],
            ["46774", "New Haven", "IN"],
        ],
    )
    rules = RuleSet(
        parse_rules(
            """
            (zip -> city, {46360 || 'Michigan City'})
            (zip -> city, {46774 || 'New Haven'})
            (zip -> state, {46360 || IN})
            (city -> zip, {- || -})
            """
        ),
        schema=schema,
    )
    detector = ViolationDetector(db, rules)
    return db, rules, detector


class TestDirtyDelta:
    def test_first_poll_requests_full_sweep(self, small):
        __, __, detector = small
        cursor = detector.dirty_delta()
        assert cursor.poll() is None
        assert cursor.poll() == ()

    def test_flips_are_reported_once(self, small):
        db, __, detector = small
        cursor = detector.dirty_delta()
        cursor.poll()
        assert detector.is_dirty(0)
        db.set_value(0, "city", "Michigan City")  # tuple 0 becomes clean
        assert not detector.is_dirty(0)
        assert cursor.poll() == (0,)
        assert cursor.poll() == ()

    def test_non_flipping_writes_not_reported(self, small):
        db, __, detector = small
        cursor = detector.dirty_delta()
        cursor.poll()
        assert detector.is_dirty(0)
        db.set_value(0, "city", "Westvile")  # still violating
        assert detector.is_dirty(0)
        assert cursor.poll() == ()

    def test_rebuild_resets_cursor_to_full(self, small):
        __, __, detector = small
        cursor = detector.dirty_delta()
        cursor.poll()
        detector.recompute()
        assert cursor.poll() is None

    def test_independent_cursors(self, small):
        db, __, detector = small
        first = detector.dirty_delta()
        second = detector.dirty_delta()
        first.poll()
        second.poll()
        db.set_value(0, "city", "Michigan City")
        assert first.poll() == (0,)
        # the second cursor still sees the flip
        assert second.poll() == (0,)


class TestAttrStatsVersions:
    def test_write_bumps_touched_rule_attributes_only(self, small):
        db, __, detector = small
        before = {a: detector.attr_stats_version(a) for a in ("zip", "city", "state")}
        db.set_value(0, "city", "Michigan City")
        # rules touching city (zip->city consts, city->zip variable)
        assert detector.attr_stats_version("city") > before["city"]
        assert detector.attr_stats_version("zip") > before["zip"]
        # no rule linking city and state was re-evaluated by this write
        assert detector.attr_stats_version("state") == before["state"]

    def test_unrelated_constant_rules_not_bumped(self, small):
        db, __, detector = small
        # a zip write from/to codes matching no rule constant moves only
        # the variable rule (city -> zip), not the constant zip rules'
        # other attributes... state is only on zip-constant rules
        before_state = detector.attr_stats_version("state")
        db.set_value(2, "zip", "99999")
        assert detector.attr_stats_version("state") == before_state

    def test_recompute_bumps_everything(self, small):
        __, __, detector = small
        before = {a: detector.attr_stats_version(a) for a in ("zip", "city", "state")}
        detector.recompute()
        for attr, version in before.items():
            assert detector.attr_stats_version(attr) > version

    def test_unknown_attribute_defaults_to_zero(self, small):
        __, __, detector = small
        assert detector.attr_stats_version("*") == 0


class TestRuleStatsVersions:
    def _rule(self, rules, index):
        return list(rules)[index]

    def test_moving_write_bumps_rule_version(self, small):
        db, rules, detector = small
        r0 = self._rule(rules, 0)  # zip -> city {46360 || 'Michigan City'}
        before = detector.rule_stats_version(r0)
        db.set_value(0, "city", "Michigan City")  # tuple 0 leaves violating
        assert detector.rule_stats_version(r0) > before

    def test_reevaluated_without_movement_keeps_version(self, small):
        """A write can re-evaluate a rule whose statistics do not move —
        per-rule versions (unlike plain re-evaluation counters) stay
        put, so stamped caches skip the re-scoring entirely."""
        db, rules, detector = small
        r2 = self._rule(rules, 2)  # zip -> state {46360 || IN}
        db.set_value(0, "state", "XX")  # tuple 0 enters violating: moves
        moved = detector.rule_stats_version(r2)
        attr_moved = detector.attr_stats_version("state")
        db.set_value(0, "state", "YY")  # re-evaluated, still violating
        assert detector.rule_stats_version(r2) == moved
        assert detector.attr_stats_version("state") == attr_moved

    def test_attr_version_is_sum_of_touching_rule_versions(self, small):
        db, rules, detector = small
        db.set_value(0, "city", "Michigan City")
        db.set_value(2, "zip", "46360")
        for attr in ("zip", "city", "state"):
            expected = sum(
                detector.rule_stats_version(rule)
                for rule in rules
                if attr in rule.attributes
            )
            assert detector.attr_stats_version(attr) == expected

    def test_recompute_bumps_every_rule(self, small):
        __, rules, detector = small
        before = {rule: detector.rule_stats_version(rule) for rule in rules}
        detector.recompute()
        for rule, version in before.items():
            assert detector.rule_stats_version(rule) > version

    def test_unknown_rule_defaults_to_zero(self, small):
        __, __, detector = small
        foreign = parse_rules("(zip -> city, {00000 || 'Nowhere'})")[0]
        assert detector.rule_stats_version(foreign) == 0


class TestWritePlanCorrectness:
    def test_random_churn_stays_verified(self, small):
        db, __, detector = small
        rng = random.Random(99)
        values = {
            "zip": ["46360", "46774", "99999", "00000"],
            "city": ["Michigan City", "New Haven", "Westville", "X"],
            "state": ["IN", "OH", "XX"],
        }
        for step in range(120):
            tid = rng.randrange(3)
            attr = rng.choice(["zip", "city", "state"])
            db.set_value(tid, attr, rng.choice(values[attr]))
            if step % 20 == 0:
                assert detector.verify(), f"diverged at step {step}"
        assert detector.verify()

    def test_hospital_churn_stays_verified(self):
        ds = load_dataset("hospital", n=120, seed=1)
        db = ds.fresh_dirty()
        detector = ViolationDetector(db, ds.rules)
        rng = random.Random(7)
        tids = db.tids()
        domain = {attr: sorted(map(str, db.domain(attr)))[:8] for attr in db.schema.attributes}
        for __step in range(150):
            tid = tids[rng.randrange(len(tids))]
            attr = rng.choice(list(db.schema.attributes))
            db.set_value(tid, attr, rng.choice(domain[attr] + ["@@novel@@"]))
        assert detector.verify()

    def test_constant_never_stored_still_exact(self):
        """Rule constants absent from the data are encoded at plan build."""
        schema = Schema("r", ["zip", "city"])
        db = Database(schema, [["00000", "Nowhere"]])
        rules = RuleSet(
            parse_rules("(zip -> city, {46360 || 'Michigan City'})"), schema=schema
        )
        detector = ViolationDetector(db, rules)
        assert not detector.is_dirty(0)
        db.set_value(0, "zip", "46360")  # enters the constant's context
        assert detector.is_dirty(0)
        db.set_value(0, "city", "Michigan City")
        assert not detector.is_dirty(0)
        assert detector.verify()

    def test_dirty_delta_type_importable(self):
        assert DirtyDelta is not None
