"""Parity tests for the batched what-if API (tentpole of the columnar engine).

Three implementations must agree cell-for-cell:

* ``what_if_many`` — the batched one-pass evaluation over partition
  statistics (sparse constant-rule plan + analytic variable-rule math);
* ``what_if`` — the scalar wrapper over the batched path;
* ``_what_if_reference`` — the original apply-and-revert evaluation,
  byte-identical to the real update path.

The property-style suites sweep randomized instances over constant and
variable CFDs (wildcard, single-constant and multi-constant LHS
patterns), and the candidate lists deliberately include the tuple's
current value (identity outcome) and values from the cell's prevented
list — both must be probe-able.
"""

import random

import pytest

from repro.constraints import CFD, RuleSet, ViolationDetector, parse_rules
from repro.constraints.pattern import ANY
from repro.db import Database, Schema

VALUES = {
    "a": ["x0", "x1", "x2"],
    "b": ["y0", "y1", "y2"],
    "c": ["z0", "z1", "z2"],
    "d": ["w0", "w1", "w2"],
}

RULES = RuleSet(
    [
        CFD(["a"], "b", {"a": "x1", "b": "y1"}, name="const_single"),
        CFD(["a"], "b", {"a": "x2", "b": "y0"}, name="const_single2"),
        CFD(["a", "c"], "b", {"a": "x0", "c": "z1", "b": "y2"}, name="const_multi"),
        CFD(["b"], "d", {"b": ANY, "d": "w0"}, name="const_wildcard_lhs"),
        CFD(["a", "c"], "d", {"a": ANY, "c": ANY, "d": ANY}, name="variable_fd"),
        CFD(["c"], "b", {"c": "z2", "b": ANY}, name="variable_const_lhs"),
    ]
)


def random_database(rng: random.Random, n: int) -> Database:
    schema = Schema("r", ["a", "b", "c", "d"])
    rows = [[rng.choice(VALUES[attr]) for attr in "abcd"] for _ in range(n)]
    return Database(schema, rows)


def candidate_values(rng: random.Random, attr: str, current: object) -> list:
    pool = VALUES[attr] + ["never_stored_value"]
    candidates = [rng.choice(pool) for _ in range(4)]
    candidates.append(current)  # the tuple's current value: identity outcome
    return candidates


class TestBatchedScalarParity:
    @pytest.mark.parametrize("seed", range(8))
    def test_batched_equals_scalar_loop(self, seed):
        rng = random.Random(seed)
        db = random_database(rng, rng.randint(2, 16))
        detector = ViolationDetector(db, RULES)
        for __ in range(25):
            tid = rng.choice(db.tids())
            attr = rng.choice("abcd")
            candidates = candidate_values(rng, attr, db.value(tid, attr))
            batched = detector.what_if_many(tid, attr, candidates)
            scalars = [detector.what_if(tid, attr, value) for value in candidates]
            assert [dict(b.items()) for b in batched] == [dict(s.items()) for s in scalars]

    @pytest.mark.parametrize("seed", range(8))
    def test_batched_equals_apply_revert_reference(self, seed):
        rng = random.Random(100 + seed)
        db = random_database(rng, rng.randint(2, 16))
        detector = ViolationDetector(db, RULES)
        for __ in range(25):
            tid = rng.choice(db.tids())
            attr = rng.choice("abcd")
            candidates = candidate_values(rng, attr, db.value(tid, attr))
            batched = detector.what_if_many(tid, attr, candidates)
            for value, outcomes in zip(candidates, batched):
                assert outcomes == detector._what_if_reference(tid, attr, value)

    @pytest.mark.parametrize("seed", range(4))
    def test_parity_survives_interleaved_writes(self, seed):
        rng = random.Random(200 + seed)
        db = random_database(rng, 12)
        detector = ViolationDetector(db, RULES)
        for __ in range(10):
            for ___ in range(5):
                db.set_value(
                    rng.choice(db.tids()),
                    rng.choice("abcd"),
                    rng.choice(VALUES[rng.choice("abcd")]),
                )
            tid = rng.choice(db.tids())
            attr = rng.choice("abcd")
            candidates = candidate_values(rng, attr, db.value(tid, attr))
            batched = detector.what_if_many(tid, attr, candidates)
            for value, outcomes in zip(candidates, batched):
                assert outcomes == detector._what_if_reference(tid, attr, value)
        assert detector.verify()


class TestBatchedSemantics:
    def _hospital_detector(self):
        db = Database(
            Schema("r", ["zip", "city"]),
            [
                ["46360", "Westville"],
                ["46360", "Michigan City"],
                ["46391", "Westville"],
            ],
        )
        rules = RuleSet(parse_rules("(zip -> city, {46360 || 'Michigan City'})"))
        return db, rules, ViolationDetector(db, rules)

    def test_current_value_yields_identity(self):
        db, rules, det = self._hospital_detector()
        rule = next(iter(rules))
        outcome = det.what_if_many(0, "city", [db.value(0, "city")])[0][rule]
        assert outcome.vio_before == outcome.vio_after
        assert outcome.vio_reduction == 0

    def test_prevented_values_are_probeable(self):
        """Prevented values stay evaluable: Eq. 6 may still score them."""
        db, rules, det = self._hospital_detector()
        rule = next(iter(rules))
        # pretend 'Michigan City' was rejected for the cell; the probe
        # must still answer (the VOI layer filters admissibility)
        outcomes = det.what_if_many(0, "city", ["Michigan City", "Nowhere"])
        assert outcomes[0][rule].vio_reduction == 1
        assert outcomes[1][rule].vio_reduction == 0

    def test_untouched_attribute_reports_empty(self):
        db2 = Database(Schema("s", ["p", "q", "extra"]), [["1", "2", "3"]])
        rules2 = RuleSet(parse_rules("(p -> q, {1 || 2})"))
        det2 = ViolationDetector(db2, rules2)
        assert det2.what_if_many(0, "p", ["9"])[0] != {}
        # attribute known to the schema but foreign to every rule
        assert det2.what_if_many(0, "extra", ["9"]) == [{}]

    def test_outcomes_align_with_candidates(self):
        db, rules, det = self._hospital_detector()
        rule = next(iter(rules))
        values = ["Michigan City", "Westville", "Elsewhere"]
        outcomes = det.what_if_many(0, "city", values)
        assert len(outcomes) == len(values)
        assert outcomes[0][rule].vio_after == 0  # fixes the violation
        assert outcomes[1][rule].vio_after == 1  # keeps it

    def test_batched_probe_does_not_mutate(self):
        db, rules, det = self._hospital_detector()
        before = db.snapshot()
        vio = det.vio_total()
        det.what_if_many(0, "city", ["Michigan City", "Nowhere", "Westville"])
        assert db.equals_data(before)
        assert det.vio_total() == vio
        assert det.verify()
