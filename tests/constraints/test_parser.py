"""Tests for :mod:`repro.constraints.parser`."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.constraints import ANY, CFD, format_cfd, parse_cfd, parse_rules
from repro.errors import RuleParseError


class TestParseBasics:
    def test_constant_rule(self):
        rules = parse_cfd("(zip -> city, {46360 || 'Michigan City'})")
        assert len(rules) == 1
        rule = rules[0]
        assert rule.lhs == ("zip",)
        assert rule.rhs == "city"
        assert rule.pattern.value("zip") == "46360"
        assert rule.rhs_constant == "Michigan City"

    def test_named_rule(self):
        rules = parse_cfd("phi9: (a -> b, {1 || 2})")
        assert rules[0].name == "phi9"

    def test_variable_rule_with_wildcards(self):
        rules = parse_cfd("(street, city -> zip, {-, 'Fort Wayne' || -})")
        rule = rules[0]
        assert rule.is_variable
        assert rule.pattern.value("street") is ANY
        assert rule.pattern.value("city") == "Fort Wayne"

    def test_multi_rhs_normalized(self):
        rules = parse_cfd("phi1: (zip -> city, state, {46360 || 'Michigan City', IN})")
        assert len(rules) == 2
        assert [r.name for r in rules] == ["phi1.1", "phi1.2"]
        assert rules[1].rhs_constant == "IN"

    def test_paper_unicode_separator(self):
        rules = parse_cfd("(zip -> city, {46360 ‖ 'Michigan City'})")
        assert rules[0].rhs_constant == "Michigan City"

    def test_underscore_wildcard(self):
        rules = parse_cfd("(a -> b, {_ || _})")
        assert rules[0].is_variable

    def test_empty_token_is_wildcard(self):
        rules = parse_cfd("(street, city -> zip, { , 'Fort Wayne' ||  })")
        assert rules[0].pattern.value("street") is ANY
        assert rules[0].pattern.value("zip") is ANY

    def test_double_quoted_values(self):
        rules = parse_cfd('(a -> b, {"x, y" || z})')
        assert rules[0].pattern.value("a") == "x, y"

    def test_single_wildcard_broadcasts_over_multi_lhs(self):
        rules = parse_cfd("(a, b -> c, {- || -})")
        assert rules[0].pattern.value("a") is ANY
        assert rules[0].pattern.value("b") is ANY


class TestParseErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "no parens at all",
            "(a -> b, no braces)",
            "(a b, {1 || 2})",  # missing ->
            "(a -> b, {1, 2 || 3})",  # arity mismatch
            "(a -> b, {1 || 2, 3})",  # rhs arity mismatch
            "(a -> b, {1, 2})",  # missing separator
            "( -> b, {|| 2})",  # empty lhs
            "(a -> , {1 || })",  # empty rhs
            "(a -> a, {1 || 2})",  # rhs equals lhs
        ],
    )
    def test_malformed_inputs(self, text):
        with pytest.raises(RuleParseError):
            parse_cfd(text)

    def test_error_carries_text(self):
        with pytest.raises(RuleParseError) as err:
            parse_cfd("garbage")
        assert "garbage" in str(err.value)


class TestParseRules:
    def test_multiline_with_comments(self):
        rules = parse_rules(
            """
            # comment line
            phi1: (zip -> city, {46360 || 'Michigan City'})

            phi5: (street, city -> zip, {-, - || -})
            """
        )
        assert [r.name for r in rules] == ["phi1", "phi5"]

    def test_empty_block(self):
        assert parse_rules("\n# only a comment\n") == []


class TestFormatRoundTrip:
    def test_format_constant(self):
        rule = parse_cfd("phi1: (zip -> city, {46360 || 'Michigan City'})")[0]
        text = format_cfd(rule)
        assert "phi1" in text
        reparsed = parse_cfd(text)[0]
        assert reparsed == rule

    def test_format_variable(self):
        rule = parse_cfd("(street, city -> zip, {-, 'Fort Wayne' || -})")[0]
        assert parse_cfd(format_cfd(rule))[0] == rule

    @given(
        lhs_const=st.text(
            alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd")),
            min_size=1,
            max_size=10,
        ),
        rhs_const=st.text(
            alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd")),
            min_size=1,
            max_size=10,
        ),
    )
    def test_roundtrip_property(self, lhs_const, rhs_const):
        """format -> parse is the identity for simple constant rules."""
        rule = CFD(["a"], "b", {"a": lhs_const, "b": rhs_const}, name="p")
        reparsed = parse_cfd(format_cfd(rule))[0]
        assert reparsed == rule
