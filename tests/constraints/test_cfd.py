"""Tests for :mod:`repro.constraints.cfd`."""

import pytest

from repro.constraints import ANY, CFD, normalize
from repro.db import Schema
from repro.errors import RuleError


class TestCFDConstruction:
    def test_constant_rule(self):
        rule = CFD(["zip"], "city", {"zip": "46360", "city": "Michigan City"})
        assert rule.is_constant
        assert not rule.is_variable
        assert rule.rhs_constant == "Michigan City"

    def test_variable_rule(self):
        rule = CFD(["street", "city"], "zip", {"street": ANY, "city": ANY, "zip": ANY})
        assert rule.is_variable
        with pytest.raises(RuleError):
            __ = rule.rhs_constant

    def test_attributes_property(self):
        rule = CFD(["a", "b"], "c", {"a": ANY, "b": ANY, "c": ANY})
        assert rule.attributes == ("a", "b", "c")

    def test_empty_lhs_rejected(self):
        with pytest.raises(RuleError):
            CFD([], "c", {"c": ANY})

    def test_duplicate_lhs_rejected(self):
        with pytest.raises(RuleError):
            CFD(["a", "a"], "c", {"a": ANY, "c": ANY})

    def test_rhs_in_lhs_rejected(self):
        with pytest.raises(RuleError):
            CFD(["a"], "a", {"a": ANY})

    def test_pattern_must_cover_exactly_attrs(self):
        with pytest.raises(RuleError):
            CFD(["a"], "b", {"a": ANY})  # missing b
        with pytest.raises(RuleError):
            CFD(["a"], "b", {"a": ANY, "b": ANY, "c": ANY})  # extra c

    def test_lhs_constants(self):
        rule = CFD(["a", "b"], "c", {"a": "1", "b": ANY, "c": "ok"})
        assert rule.lhs_constants() == {"a": "1"}

    def test_mixed_constant_lhs_variable_rhs(self):
        rule = CFD(["city"], "zip", {"city": "Fort Wayne", "zip": ANY})
        assert rule.is_variable
        assert rule.lhs_constants() == {"city": "Fort Wayne"}


class TestCFDMatching:
    def test_matches_lhs(self):
        rule = CFD(["zip"], "city", {"zip": "46360", "city": "Michigan City"})
        assert rule.matches_lhs({"zip": "46360", "city": "x"}.__getitem__)
        assert not rule.matches_lhs({"zip": "99999", "city": "x"}.__getitem__)

    def test_matches_rhs(self):
        rule = CFD(["zip"], "city", {"zip": "46360", "city": "Michigan City"})
        assert rule.matches_rhs({"city": "Michigan City"}.__getitem__)
        assert not rule.matches_rhs({"city": "Westville"}.__getitem__)

    def test_validate_schema(self):
        rule = CFD(["a"], "b", {"a": ANY, "b": ANY})
        rule.validate_schema(Schema("r", ["a", "b"]))
        with pytest.raises(KeyError):
            rule.validate_schema(Schema("r", ["a", "c"]))


class TestCFDEquality:
    def test_equal_rules(self):
        a = CFD(["x"], "y", {"x": "1", "y": "2"})
        b = CFD(["x"], "y", {"x": "1", "y": "2"})
        assert a == b
        assert hash(a) == hash(b)

    def test_name_not_part_of_identity(self):
        a = CFD(["x"], "y", {"x": "1", "y": "2"}, name="n1")
        b = CFD(["x"], "y", {"x": "1", "y": "2"}, name="n2")
        assert a == b

    def test_different_patterns_unequal(self):
        a = CFD(["x"], "y", {"x": "1", "y": "2"})
        b = CFD(["x"], "y", {"x": "1", "y": "3"})
        assert a != b

    def test_repr_contains_fd(self):
        rule = CFD(["x"], "y", {"x": "1", "y": ANY}, name="r")
        assert "x -> y" in repr(rule)


class TestNormalize:
    def test_single_rhs_keeps_name(self):
        rules = normalize(["a"], ["b"], {"a": "1", "b": "2"}, name="phi")
        assert len(rules) == 1
        assert rules[0].name == "phi"

    def test_multi_rhs_splits(self):
        rules = normalize(
            ["zip"], ["city", "state"],
            {"zip": "46360", "city": "Michigan City", "state": "IN"},
            name="phi1",
        )
        assert [r.rhs for r in rules] == ["city", "state"]
        assert [r.name for r in rules] == ["phi1.1", "phi1.2"]
        for rule in rules:
            assert rule.lhs == ("zip",)
            assert set(rule.pattern.attributes) == {"zip", rule.rhs}

    def test_empty_rhs_rejected(self):
        with pytest.raises(RuleError):
            normalize(["a"], [], {"a": "1"})

    def test_unnamed_multi_rhs(self):
        rules = normalize(["a"], ["b", "c"], {"a": ANY, "b": ANY, "c": ANY})
        assert [r.name for r in rules] == ["", ""]
