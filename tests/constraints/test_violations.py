"""Tests for :mod:`repro.constraints.violations`.

Covers Definition 1 semantics, incremental maintenance under updates,
the what-if (Eq. 6 input) API, and a property-based random-ops check
that the incremental state always matches a from-scratch rebuild.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.constraints import RuleSet, ViolationDetector, parse_rules
from repro.db import Database, Schema


@pytest.fixture()
def simple_db():
    schema = Schema("r", ["zip", "city", "street"])
    return Database(
        schema,
        [
            ["46360", "Michigan City", "Main St"],
            ["46360", "Westville", "Main St"],
            ["46360", "Westville", "Oak Ave"],
            ["46774", "New Haven", "Bell Ave"],
            ["46774", "New Haven", "Bell Ave"],
        ],
    )


@pytest.fixture()
def constant_rule_set():
    return RuleSet(parse_rules("phi1: (zip -> city, {46360 || 'Michigan City'})"))


@pytest.fixture()
def variable_rule_set():
    return RuleSet(parse_rules("phi5: (street -> zip, {- || -})"))


class TestConstantRuleDetection:
    def test_violating_tuples(self, simple_db, constant_rule_set):
        det = ViolationDetector(simple_db, constant_rule_set)
        assert det.dirty_tuples() == {1, 2}

    def test_vio_tuple_is_one_for_constant(self, simple_db, constant_rule_set):
        det = ViolationDetector(simple_db, constant_rule_set)
        rule = constant_rule_set[0]
        assert det.vio_tuple(1, rule) == 1
        assert det.vio_tuple(0, rule) == 0

    def test_context_and_satisfying(self, simple_db, constant_rule_set):
        det = ViolationDetector(simple_db, constant_rule_set)
        rule = constant_rule_set[0]
        assert det.context_size(rule) == 3  # three 46360 tuples
        assert det.satisfying_count(rule) == 1

    def test_out_of_context_tuples_do_not_violate(self, simple_db, constant_rule_set):
        det = ViolationDetector(simple_db, constant_rule_set)
        assert not det.is_dirty(3)
        assert not det.is_dirty(4)

    def test_fix_removes_violation(self, simple_db, constant_rule_set):
        det = ViolationDetector(simple_db, constant_rule_set)
        simple_db.set_value(1, "city", "Michigan City")
        assert det.dirty_tuples() == {2}
        assert det.verify()

    def test_leaving_context_removes_violation(self, simple_db, constant_rule_set):
        det = ViolationDetector(simple_db, constant_rule_set)
        simple_db.set_value(1, "zip", "99999")
        assert det.dirty_tuples() == {2}
        assert det.verify()

    def test_entering_context_creates_violation(self, simple_db, constant_rule_set):
        det = ViolationDetector(simple_db, constant_rule_set)
        simple_db.set_value(3, "zip", "46360")
        assert 3 in det.dirty_tuples()
        assert det.verify()


class TestVariableRuleDetection:
    def test_pairwise_counting(self, simple_db, variable_rule_set):
        det = ViolationDetector(simple_db, variable_rule_set)
        rule = variable_rule_set[0]
        # "Main St" group holds zips {46360, 46360} -> uniform;
        # others uniform too -> no violations initially
        assert det.vio_rule(rule) == 0
        simple_db.set_value(0, "zip", "46774")
        # Main St group now {46774, 46360}: each violates with 1 other
        assert det.vio_rule(rule) == 2
        assert det.vio_tuple(0, rule) == 1
        assert det.vio_tuple(1, rule) == 1

    def test_partners(self, simple_db, variable_rule_set):
        det = ViolationDetector(simple_db, variable_rule_set)
        rule = variable_rule_set[0]
        simple_db.set_value(0, "zip", "46774")
        assert det.partners(0, rule) == {1}
        assert det.partners(1, rule) == {0}
        assert det.partners(3, rule) == set()

    def test_group_value_counts(self, simple_db, variable_rule_set):
        det = ViolationDetector(simple_db, variable_rule_set)
        rule = variable_rule_set[0]
        simple_db.set_value(0, "zip", "46774")
        assert det.group_value_counts(0, rule) == {"46774": 1, "46360": 1}

    def test_group_members(self, simple_db, variable_rule_set):
        det = ViolationDetector(simple_db, variable_rule_set)
        rule = variable_rule_set[0]
        assert det.group_members(0, rule) == {0, 1}

    def test_three_way_group(self, variable_rule_set):
        schema = Schema("r", ["zip", "city", "street"])
        db = Database(
            schema,
            [["1", "c", "s"], ["2", "c", "s"], ["2", "c", "s"]],
        )
        det = ViolationDetector(db, variable_rule_set)
        rule = variable_rule_set[0]
        # zips {1, 2, 2}: t0 violates with 2 others, t1/t2 with 1 each
        assert det.vio_tuple(0, rule) == 2
        assert det.vio_tuple(1, rule) == 1
        assert det.vio_rule(rule) == 4
        assert det.violating_tuple_count(rule) == 3
        assert det.satisfying_count(rule) == 0

    def test_constant_context_variable_rule(self, simple_db):
        rules = RuleSet(parse_rules("(street -> zip, {'Main St' || -})"))
        det = ViolationDetector(simple_db, rules)
        rule = rules[0]
        assert det.context_size(rule) == 2
        simple_db.set_value(0, "zip", "46774")
        assert det.vio_rule(rule) == 2


class TestViolatedRules:
    def test_vio_rule_list(self, figure1_dirty, figure1_rules):
        det = ViolationDetector(figure1_dirty, figure1_rules)
        names = {r.name for r in det.violated_rules(1)}
        assert "phi1.1" in names

    def test_total_violations(self, figure1_dirty, figure1_rules):
        det = ViolationDetector(figure1_dirty, figure1_rules)
        assert det.vio_total() > 0
        # repairing everything zeroes the counter
        figure1_dirty.set_value(1, "city", "Michigan City")
        figure1_dirty.set_value(2, "city", "Michigan City")
        figure1_dirty.set_value(4, "zip", "46825")
        figure1_dirty.set_value(6, "city", "New Haven")
        assert det.vio_total() == 0
        assert det.dirty_tuples() == set()

    def test_weights_are_context_fractions(self, figure1_dirty, figure1_rules):
        det = ViolationDetector(figure1_dirty, figure1_rules)
        weights = det.weights()
        phi5 = figure1_rules.by_name("phi5")
        assert weights[phi5] == 1.0  # wildcard context covers all tuples
        phi11 = figure1_rules.by_name("phi1.1")
        assert weights[phi11] == det.context_size(phi11) / len(figure1_dirty)


class TestWhatIf:
    def test_what_if_does_not_mutate(self, simple_db, constant_rule_set):
        det = ViolationDetector(simple_db, constant_rule_set)
        before_vio = det.vio_total()
        det.what_if(1, "city", "Michigan City")
        assert det.vio_total() == before_vio
        assert simple_db.value(1, "city") == "Westville"
        assert det.verify()

    def test_what_if_reports_fix(self, simple_db, constant_rule_set):
        det = ViolationDetector(simple_db, constant_rule_set)
        rule = constant_rule_set[0]
        outcome = det.what_if(1, "city", "Michigan City")[rule]
        assert outcome.vio_before == 2
        assert outcome.vio_after == 1
        assert outcome.vio_reduction == 1
        assert outcome.satisfying_after == 2

    def test_what_if_reports_harm(self, simple_db, constant_rule_set):
        det = ViolationDetector(simple_db, constant_rule_set)
        rule = constant_rule_set[0]
        outcome = det.what_if(0, "city", "Nowhere")[rule]
        assert outcome.vio_reduction == -1

    def test_what_if_same_value_is_identity(self, simple_db, constant_rule_set):
        det = ViolationDetector(simple_db, constant_rule_set)
        rule = constant_rule_set[0]
        outcome = det.what_if(0, "city", "Michigan City")[rule]
        assert outcome.vio_reduction == 0

    def test_what_if_only_reports_touched_rules(self, figure1_dirty, figure1_rules):
        det = ViolationDetector(figure1_dirty, figure1_rules)
        outcomes = det.what_if(1, "state", "XX")
        assert all("state" in {r.rhs, *r.lhs} for r in outcomes)

    def test_what_if_unknown_attribute_rules(self, simple_db, constant_rule_set):
        det = ViolationDetector(simple_db, constant_rule_set)
        assert det.what_if(0, "street", "Elsewhere") == {}

    def test_what_if_matches_actual_apply(self, figure1_dirty, figure1_rules):
        det = ViolationDetector(figure1_dirty, figure1_rules)
        outcomes = det.what_if(4, "zip", "46825")
        figure1_dirty.set_value(4, "zip", "46825")
        for rule, outcome in outcomes.items():
            assert det.vio_rule(rule) == outcome.vio_after
            assert det.satisfying_count(rule) == outcome.satisfying_after


class TestIncrementalConsistency:
    """Property: incremental bookkeeping equals a fresh rebuild."""

    @given(
        ops=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=7),
                st.sampled_from(["zip", "city", "state", "street"]),
                st.sampled_from(
                    ["46360", "46825", "46774", "46391", "Michigan City",
                     "Fort Wayne", "Westville", "IN", "XX", "Main St"]
                ),
            ),
            max_size=25,
        )
    )
    @settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_random_update_sequences(self, ops):
        schema = Schema("customer", ["name", "src", "street", "city", "state", "zip"])
        from tests.conftest import make_figure1_dirty_rows

        db = Database(schema, make_figure1_dirty_rows())
        from tests.conftest import FIGURE1_RULES_TEXT

        rules = RuleSet(parse_rules(FIGURE1_RULES_TEXT), schema=schema)
        det = ViolationDetector(db, rules)
        for tid, attr, value in ops:
            db.set_value(tid, attr, value)
        assert det.verify()

    @given(
        tid=st.integers(min_value=0, max_value=7),
        attr=st.sampled_from(["zip", "city", "state"]),
        value=st.sampled_from(["46360", "46825", "Fort Wayne", "XX"]),
    )
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_what_if_is_side_effect_free(self, figure1_dirty, figure1_rules, tid, attr, value):
        det = ViolationDetector(figure1_dirty, figure1_rules)
        snapshot = {rule: det.vio_rule(rule) for rule in figure1_rules}
        det.what_if(tid, attr, value)
        assert {rule: det.vio_rule(rule) for rule in figure1_rules} == snapshot
        assert det.verify()


class TestDetach:
    def test_detached_detector_stops_tracking(self, simple_db, constant_rule_set):
        det = ViolationDetector(simple_db, constant_rule_set)
        det.detach()
        simple_db.set_value(1, "city", "Michigan City")
        assert det.dirty_tuples() == {1, 2}  # stale by design

    def test_recompute_refreshes(self, simple_db, constant_rule_set):
        det = ViolationDetector(simple_db, constant_rule_set)
        det.detach()
        simple_db.set_value(1, "city", "Michigan City")
        det.recompute()
        assert det.dirty_tuples() == {2}

    def test_repr(self, simple_db, constant_rule_set):
        det = ViolationDetector(simple_db, constant_rule_set)
        assert "dirty" in repr(det)


class TestSigCacheStats:
    """The probe-signature cache is observable (repolint cache-discipline)."""

    def test_counters_move_with_lookups(self, simple_db, variable_rule_set):
        det = ViolationDetector(simple_db, variable_rule_set)
        before = det.stats
        assert before["sig_cache_hits"] == 0
        det.probe_signature(0, "zip")
        det.probe_signature(0, "zip")
        after = det.stats
        assert after["sig_cache_misses"] == before["sig_cache_misses"] + 1
        assert after["sig_cache_hits"] == 1
        assert after["sig_cache_size"] >= 1
        assert after["sig_cache_capacity"] > 0

    def test_write_invalidates_and_recounts(self, simple_db, variable_rule_set):
        det = ViolationDetector(simple_db, variable_rule_set)
        det.probe_signature(0, "zip")
        simple_db.set_value(0, "zip", "99999")
        det.probe_signature(0, "zip")  # entry was evicted by the write
        assert det.stats["sig_cache_misses"] == 2
        assert det.stats["sig_cache_hits"] == 0
