"""Tests for the online-monitoring hooks (paper §3 data-entry scenario)."""

import pytest

from repro.constraints import RuleSet, ViolationDetector, parse_rules
from repro.db import Database, Schema


@pytest.fixture()
def setting():
    schema = Schema("r", ["zip", "city", "street"])
    db = Database(
        schema,
        [
            ["46360", "Michigan City", "Main St"],
            ["46825", "Fort Wayne", "Oak Ave"],
        ],
    )
    rules = RuleSet(
        parse_rules(
            """
            phi1: (zip -> city, {46360 || 'Michigan City'})
            phi5: (street -> zip, {- || -})
            """
        )
    )
    return db, ViolationDetector(db, rules)


class TestAddTuple:
    def test_clean_insert(self, setting):
        db, detector = setting
        tid = db.insert(["46360", "Michigan City", "Elm St"])
        detector.add_tuple(tid)
        assert not detector.is_dirty(tid)
        assert detector.verify()

    def test_dirty_insert_detected_immediately(self, setting):
        db, detector = setting
        tid = db.insert(["46360", "Westvile", "Elm St"])
        detector.add_tuple(tid)
        assert detector.is_dirty(tid)
        assert detector.verify()

    def test_insert_creating_pair_violation(self, setting):
        db, detector = setting
        tid = db.insert(["99999", "Anywhere", "Main St"])  # conflicts with t0's zip
        detector.add_tuple(tid)
        assert detector.is_dirty(tid)
        assert detector.is_dirty(0)
        assert detector.verify()

    def test_subsequent_updates_tracked(self, setting):
        db, detector = setting
        tid = db.insert(["46360", "Westvile", "Elm St"])
        detector.add_tuple(tid)
        db.set_value(tid, "city", "Michigan City")
        assert not detector.is_dirty(tid)
        assert detector.verify()


class TestRemoveTuple:
    def test_remove_clears_violations(self, setting):
        db, detector = setting
        tid = db.insert(["99999", "Anywhere", "Main St"])
        detector.add_tuple(tid)
        assert detector.is_dirty(0)
        detector.remove_tuple(tid)
        db.delete(tid)
        assert not detector.is_dirty(0)
        assert detector.verify()

    def test_remove_constant_violator(self, setting):
        db, detector = setting
        tid = db.insert(["46360", "Wrong", "Elm St"])
        detector.add_tuple(tid)
        detector.remove_tuple(tid)
        db.delete(tid)
        assert detector.dirty_tuples() == set()
        assert detector.verify()

    def test_remove_untracked_tuple_is_noop(self, setting):
        db, detector = setting
        detector.remove_tuple(12345)  # never added
        assert detector.verify()
