"""Tests for rule-file round-trips (save_rules / load_rules)."""

from repro.constraints import RuleSet, load_rules, parse_rules, save_rules


class TestRuleFileRoundTrip:
    def test_roundtrip(self, tmp_path):
        rules = parse_rules(
            """
            phi1: (zip -> city, {46360 || 'Michigan City'})
            phi5: (street, city -> zip, {-, 'Fort Wayne' || -})
            """
        )
        path = tmp_path / "rules.txt"
        save_rules(rules, path)
        loaded = load_rules(path)
        assert loaded == rules

    def test_ruleset_roundtrip(self, tmp_path, figure1_rules):
        path = tmp_path / "rules.txt"
        save_rules(list(figure1_rules), path)
        loaded = RuleSet(load_rules(path))
        assert len(loaded) == len(figure1_rules)
        for original, reparsed in zip(figure1_rules, loaded):
            assert original == reparsed

    def test_file_contains_comments_ok(self, tmp_path):
        path = tmp_path / "rules.txt"
        path.write_text("# my rules\nphi1: (a -> b, {1 || 2})\n")
        assert len(load_rules(path)) == 1

    def test_values_with_spaces_quoted(self, tmp_path):
        rules = parse_rules("(zip -> city, {46360 || 'Michigan City'})")
        path = tmp_path / "rules.txt"
        save_rules(rules, path)
        assert "'Michigan City'" in path.read_text()
