"""Tests for :mod:`repro.constraints.pattern`."""

from repro.constraints import ANY, PatternTuple
from repro.constraints.pattern import Wildcard


class TestWildcard:
    def test_singleton(self):
        assert Wildcard() is ANY
        assert Wildcard() is Wildcard()

    def test_repr(self):
        assert repr(ANY) == "ANY"

    def test_pickle_roundtrip(self):
        import pickle

        assert pickle.loads(pickle.dumps(ANY)) is ANY


class TestPatternTuple:
    def test_attributes_order_preserved(self):
        tp = PatternTuple({"b": "1", "a": ANY})
        assert tp.attributes == ("b", "a")

    def test_value_and_get(self):
        tp = PatternTuple({"a": "x"})
        assert tp.value("a") == "x"
        assert tp.get("missing") is None
        assert tp.get("missing", "d") == "d"

    def test_is_constant_on(self):
        tp = PatternTuple({"a": "x", "b": ANY})
        assert tp.is_constant_on("a")
        assert not tp.is_constant_on("b")

    def test_constants(self):
        tp = PatternTuple({"a": "x", "b": ANY, "c": 3})
        assert tp.constants() == {"a": "x", "c": 3}

    def test_matches_constant(self):
        tp = PatternTuple({"a": "x", "b": ANY})
        assert tp.matches({"a": "x", "b": "whatever"}.__getitem__)
        assert not tp.matches({"a": "y", "b": "whatever"}.__getitem__)

    def test_matches_wildcard_always(self):
        tp = PatternTuple({"a": ANY})
        assert tp.matches({"a": object()}.__getitem__)

    def test_matches_subset_of_attributes(self):
        tp = PatternTuple({"a": "x", "b": "y"})
        getter = {"a": "x", "b": "zzz"}.__getitem__
        assert tp.matches(getter, ("a",))
        assert not tp.matches(getter, ("b",))

    def test_restrict(self):
        tp = PatternTuple({"a": "x", "b": ANY})
        restricted = tp.restrict(("a",))
        assert restricted.attributes == ("a",)
        assert restricted.value("a") == "x"

    def test_contains_and_len(self):
        tp = PatternTuple({"a": "x", "b": ANY})
        assert "a" in tp and "z" not in tp
        assert len(tp) == 2

    def test_equality_and_hash(self):
        assert PatternTuple({"a": "x"}) == PatternTuple({"a": "x"})
        assert PatternTuple({"a": "x"}) != PatternTuple({"a": "y"})
        assert len({PatternTuple({"a": ANY}), PatternTuple({"a": ANY})}) == 1

    def test_repr_wildcard_rendered_as_dash(self):
        assert "-" in repr(PatternTuple({"a": ANY}))

    def test_items(self):
        tp = PatternTuple({"a": "x"})
        assert list(tp.items()) == [("a", "x")]
