"""Tests for :mod:`repro.experiments.report`."""

import pytest

from repro.experiments import Series, interpolate_at, render_table, save_csv


class TestSeries:
    def test_add_and_access(self):
        s = Series("a")
        s.add(0, 0.0)
        s.add(10, 50.0)
        assert s.xs == [0, 10]
        assert s.ys == [0.0, 50.0]

    def test_final(self):
        assert Series("a", [(0, 1.0), (5, 9.0)]).final() == 9.0
        assert Series("a").final() == 0.0

    def test_x_at_y(self):
        s = Series("a", [(0, 0.0), (10, 50.0), (20, 90.0)])
        assert s.x_at_y(50.0) == 10
        assert s.x_at_y(60.0) == 20
        assert s.x_at_y(99.0) is None


class TestInterpolate:
    def test_midpoint(self):
        s = Series("a", [(0.0, 0.0), (10.0, 100.0)])
        assert interpolate_at(s, [5.0]) == [50.0]

    def test_clamping(self):
        s = Series("a", [(10.0, 1.0), (20.0, 2.0)])
        assert interpolate_at(s, [0.0, 30.0]) == [1.0, 2.0]

    def test_exact_points(self):
        s = Series("a", [(0.0, 0.0), (10.0, 100.0)])
        assert interpolate_at(s, [0.0, 10.0]) == [0.0, 100.0]

    def test_empty_series(self):
        assert interpolate_at(Series("a"), [1.0, 2.0]) == [0.0, 0.0]

    def test_duplicate_x(self):
        s = Series("a", [(0.0, 0.0), (5.0, 10.0), (5.0, 20.0), (10.0, 20.0)])
        result = interpolate_at(s, [5.0])
        assert result[0] in (10.0, 20.0)

    def test_many_points(self):
        s = Series("a", [(float(i), float(i * i)) for i in range(11)])
        assert interpolate_at(s, [2.5])[0] == pytest.approx(6.5)


class TestRenderTable:
    def test_contains_labels_and_values(self):
        s1 = Series("Alpha", [(0, 0.0), (100, 90.0)])
        s2 = Series("Beta", [(0, 0.0), (100, 50.0)])
        table = render_table("My Title", "x%", [s1, s2], [0.0, 50.0, 100.0])
        assert "My Title" in table
        assert "Alpha" in table and "Beta" in table
        assert "90.0" in table and "45.0" in table

    def test_row_count(self):
        s = Series("A", [(0, 0.0)])
        table = render_table("T", "x", [s], [0.0, 25.0, 50.0])
        assert len(table.splitlines()) == 3 + 3  # title, rule, header + rows

    def test_custom_format(self):
        s = Series("A", [(0, 0.123456)])
        table = render_table("T", "x", [s], [0.0], y_format="{:6.3f}")
        assert "0.123" in table


class TestSaveCsv:
    def test_writes_csv(self, tmp_path):
        s = Series("A", [(0.0, 1.0), (10.0, 2.0)])
        path = tmp_path / "out" / "curve.csv"
        save_csv(path, [s], [0.0, 10.0], x_label="effort")
        content = path.read_text().splitlines()
        assert content[0] == "effort,A"
        assert content[1].startswith("0.0,1.0")
        assert len(content) == 3
