"""Tests for :mod:`repro.experiments.harness` and the figure runners."""

import pytest

from repro.core.gdr import GDRResult
from repro.core.metrics import TrajectoryPoint
from repro.datasets import load_dataset
from repro.experiments import (
    FIGURE3_STRATEGIES,
    FIGURE4_APPROACHES,
    figure3_series,
    figure4_series,
    figure5_series,
    heuristic_improvement,
    initial_dirty_count,
    run_heuristic,
    run_strategy,
    trajectory_series,
)
from repro.experiments.harness import _config_for


@pytest.fixture(scope="module")
def tiny_hospital():
    return load_dataset("hospital", n=120, seed=2)


class TestConfigMapping:
    def test_all_approaches_have_configs(self):
        for approach in FIGURE3_STRATEGIES + FIGURE4_APPROACHES:
            config = _config_for(approach, seed=0)
            assert config.seed == 0

    def test_gdr_is_voi_active(self):
        config = _config_for("GDR", 0)
        assert config.ranking == "voi" and config.learning == "active"

    def test_active_learning_has_no_grouping(self):
        config = _config_for("Active-Learning", 0)
        assert not config.grouping

    def test_unknown_approach(self):
        with pytest.raises(ValueError):
            _config_for("Nonsense", 0)


class TestRunStrategy:
    def test_runs_and_does_not_mutate_dataset(self, tiny_hospital):
        before = tiny_hospital.dirty.snapshot()
        result, engine = run_strategy(tiny_hospital, "GDR-NoLearning", seed=0)
        assert tiny_hospital.dirty.equals_data(before)
        assert result.feedback_used > 0
        assert result.improvement > 0

    def test_budget_respected(self, tiny_hospital):
        result, __ = run_strategy(tiny_hospital, "GDR", seed=0, feedback_limit=5)
        assert result.feedback_used <= 5


class TestTrajectorySeries:
    def _result(self):
        result = GDRResult(initial_loss=1.0, final_loss=0.0)
        result.feedback_used = 10
        result.trajectory = [
            TrajectoryPoint(0, 0, 1.0),
            TrajectoryPoint(5, 0, 0.5),
            TrajectoryPoint(10, 0, 0.0),
        ]
        return result

    def test_percent_of_own_total(self):
        series = trajectory_series("x", self._result())
        assert series.points[0] == (0.0, 0.0)
        assert series.points[-1] == (100.0, 100.0)
        assert series.points[1] == (50.0, 50.0)

    def test_percent_of_denominator(self):
        series = trajectory_series(
            "x", self._result(), x_mode="percent_of_denominator", denominator=20
        )
        assert series.points[-1][0] == pytest.approx(50.0)

    def test_denominator_required(self):
        with pytest.raises(ValueError):
            trajectory_series("x", self._result(), x_mode="percent_of_denominator")

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            trajectory_series("x", self._result(), x_mode="bogus")

    def test_same_feedback_points_collapse(self):
        result = GDRResult(initial_loss=1.0, final_loss=0.4)
        result.feedback_used = 2
        result.trajectory = [
            TrajectoryPoint(0, 0, 1.0),
            TrajectoryPoint(1, 0, 0.8),
            TrajectoryPoint(1, 1, 0.6),  # learner decision at same feedback
            TrajectoryPoint(2, 1, 0.4),
        ]
        series = trajectory_series("x", result)
        assert len(series.points) == 3  # feedback levels 0, 1, 2
        assert series.points[1][1] == pytest.approx(40.0)  # latest at that x


class TestHeuristicRunner:
    def test_heuristic_improvement_constant_line(self, tiny_hospital):
        series = heuristic_improvement(tiny_hospital)
        assert series.label == "Heuristic"
        assert series.points[0][1] == series.points[1][1]

    def test_run_heuristic_is_nonnegative_here(self, tiny_hospital):
        assert run_heuristic(tiny_hospital) > 0

    def test_initial_dirty_count(self, tiny_hospital):
        count = initial_dirty_count(tiny_hospital)
        assert count >= tiny_hospital.dirty_tuple_count


class TestFigureSeries:
    def test_figure3_series_labels_and_convergence(self, tiny_hospital):
        curves = figure3_series(tiny_hospital, seed=0)
        assert [c.label for c in curves] == list(FIGURE3_STRATEGIES)
        for curve in curves:
            assert curve.points[0][1] == pytest.approx(0.0)
            assert curve.final() > 50  # all strategies eventually converge

    def test_figure4_series_includes_heuristic(self, tiny_hospital):
        curves = figure4_series(tiny_hospital, seed=0, efforts=(0.3, 1.0))
        labels = [c.label for c in curves]
        assert labels[:-1] == list(FIGURE4_APPROACHES)
        assert labels[-1] == "Heuristic"
        for curve in curves[:-1]:
            assert curve.points[0] == (0.0, 0.0)

    def test_figure5_series_precision_recall(self, tiny_hospital):
        curves = figure5_series(tiny_hospital, seed=0, efforts=(0.5, 1.0))
        labels = {c.label for c in curves}
        assert labels == {"Precision", "Recall"}
        for curve in curves:
            for __, y in curve.points:
                assert 0.0 <= y <= 1.0


class TestFigureCLIs:
    def test_figure3_main(self, capsys):
        from repro.experiments.figure3 import main

        assert main(["--dataset", "hospital", "--n", "100", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out and "GDR-NoLearning" in out
