"""Tests for the exception hierarchy and the public package surface."""

import pytest

import repro
from repro.errors import (
    ConfigError,
    DatasetError,
    IntegrityError,
    JournalError,
    JournalReplayError,
    NotFittedError,
    RepairError,
    ReproError,
    RuleError,
    RuleParseError,
    SchemaError,
    UnknownAttributeError,
    UnknownTupleError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            SchemaError,
            RuleError,
            RuleParseError,
            RepairError,
            NotFittedError,
            ConfigError,
            UnknownTupleError,
            DatasetError,
            JournalError,
            JournalReplayError,
            IntegrityError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_dataset_error_is_config_error(self):
        assert issubclass(DatasetError, ConfigError)

    def test_dataset_error_message(self):
        err = DatasetError("hospital", "unknown override", field="bogus")
        assert err.dataset == "hospital"
        assert err.field == "bogus"
        assert "hospital" in str(err)
        assert "bogus" in str(err)

    def test_journal_replay_error_is_journal_error(self):
        assert issubclass(JournalReplayError, JournalError)

    def test_unknown_attribute_is_keyerror_too(self):
        assert issubclass(UnknownAttributeError, KeyError)
        assert issubclass(UnknownAttributeError, SchemaError)

    def test_unknown_tuple_is_keyerror(self):
        assert issubclass(UnknownTupleError, KeyError)

    def test_rule_parse_error_message(self):
        err = RuleParseError("bad text", "because reasons")
        assert "bad text" in str(err)
        assert "because reasons" in str(err)
        assert err.text == "bad text"

    def test_unknown_attribute_message(self):
        err = UnknownAttributeError("city", "customer")
        assert "city" in str(err)
        assert "customer" in str(err)


class TestErrorPaths:
    """The failure modes a robust session must report, not mask."""

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"guard": 1},
            {"guard": "yes"},
            {"guard_interval": 0},
            {"guard_max_incidents": 0},
            {"journal_path": ""},
            {"journal_fsync": 1},
            {"checkpoint_path": ""},
            {"checkpoint_every": 0},
        ],
    )
    def test_robustness_knobs_validated(self, kwargs):
        from repro.core import GDRConfig

        with pytest.raises(ConfigError):
            GDRConfig(**kwargs)

    def test_feedback_against_unknown_tuple(
        self, figure1_dirty, figure1_clean, figure1_rules
    ):
        from repro.core import GDRConfig, GDREngine, GroundTruthOracle
        from repro.repair.candidate import CandidateUpdate
        from repro.repair.feedback import Feedback, UserFeedback

        engine = GDREngine(
            figure1_dirty,
            figure1_rules,
            GroundTruthOracle(figure1_clean),
            config=GDRConfig.no_learning(),
            clean_db=figure1_clean,
        )
        with pytest.raises(UnknownTupleError):
            engine.manager.apply_feedback(
                CandidateUpdate(9999, "city", "Nowhere", 0.5),
                UserFeedback(Feedback.CONFIRM),
            )

    def test_journal_replay_onto_mismatched_db(self, figure1_dirty, tmp_path):
        from repro.db import FeedbackJournal

        path = tmp_path / "journal.jsonl"
        journal = FeedbackJournal(path)
        journal.log_write(0, "city", "NOT-THE-PREIMAGE", "X", source="user")
        journal.close()
        with pytest.raises(JournalReplayError):
            FeedbackJournal.replay_writes(path, figure1_dirty)

    @pytest.mark.parametrize("name", ["hospital", "adult"])
    def test_unknown_dataset_override(self, name):
        from repro.datasets import load_dataset

        with pytest.raises(DatasetError) as info:
            load_dataset(name, n=20, seed=0, bogus_knob=1)
        assert info.value.dataset == name
        assert info.value.field == "bogus_knob"

    def test_unknown_dataset_name(self):
        from repro.datasets import load_dataset

        with pytest.raises(DatasetError):
            load_dataset("no-such-dataset", n=20)

    def test_invalid_dataset_size(self):
        from repro.datasets import load_dataset

        with pytest.raises(DatasetError):
            load_dataset("hospital", n=0)


class TestPublicApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_key_classes_exported(self):
        for name in (
            "Database",
            "Schema",
            "RuleSet",
            "CFD",
            "ViolationDetector",
            "GDREngine",
            "GDRConfig",
            "GroundTruthOracle",
            "batch_repair",
            "discover_rules",
            "parse_rules",
        ):
            assert name in repro.__all__

    def test_quickstart_docstring_example(self):
        """The module docstring example must actually work."""
        import doctest

        results = doctest.testmod(repro, verbose=False)
        assert results.failed == 0
