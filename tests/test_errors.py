"""Tests for the exception hierarchy and the public package surface."""

import pytest

import repro
from repro.errors import (
    ConfigError,
    NotFittedError,
    RepairError,
    ReproError,
    RuleError,
    RuleParseError,
    SchemaError,
    UnknownAttributeError,
    UnknownTupleError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            SchemaError,
            RuleError,
            RuleParseError,
            RepairError,
            NotFittedError,
            ConfigError,
            UnknownTupleError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_unknown_attribute_is_keyerror_too(self):
        assert issubclass(UnknownAttributeError, KeyError)
        assert issubclass(UnknownAttributeError, SchemaError)

    def test_unknown_tuple_is_keyerror(self):
        assert issubclass(UnknownTupleError, KeyError)

    def test_rule_parse_error_message(self):
        err = RuleParseError("bad text", "because reasons")
        assert "bad text" in str(err)
        assert "because reasons" in str(err)
        assert err.text == "bad text"

    def test_unknown_attribute_message(self):
        err = UnknownAttributeError("city", "customer")
        assert "city" in str(err)
        assert "customer" in str(err)


class TestPublicApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_key_classes_exported(self):
        for name in (
            "Database",
            "Schema",
            "RuleSet",
            "CFD",
            "ViolationDetector",
            "GDREngine",
            "GDRConfig",
            "GroundTruthOracle",
            "batch_repair",
            "discover_rules",
            "parse_rules",
        ):
            assert name in repro.__all__

    def test_quickstart_docstring_example(self):
        """The module docstring example must actually work."""
        import doctest

        results = doctest.testmod(repro, verbose=False)
        assert results.failed == 0
