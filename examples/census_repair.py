"""Dataset 2 walkthrough: discover CFDs from dirty data, then repair.

Mirrors the paper's Dataset 2 pipeline: generate a census-like table,
inject random errors into 30% of the tuples, *discover* the quality
rules from the dirty instance itself (support threshold 5%, as in the
paper), and repair guided by user feedback.

Also demonstrates the discovery API directly: mined constant CFDs and
validated variable CFDs are printed with their textual notation.

Run::

    python examples/census_repair.py [--n 1000] [--seed 0]
"""

from __future__ import annotations

import argparse

from repro import (
    GDRConfig,
    GDREngine,
    GroundTruthOracle,
    discover_rules,
    format_cfd,
)
from repro.constraints import fd_violation_rate
from repro.datasets import load_dataset


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=1000)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    dataset = load_dataset("adult", n=args.n, seed=args.seed)
    print(f"Dataset: {dataset.describe()}")

    print("\nRules discovered from the dirty instance (support >= 5%):")
    for rule in dataset.rules:
        kind = "constant" if rule.is_constant else "variable"
        print(f"  [{kind}] {format_cfd(rule)}")

    # discovery API directly, with different thresholds
    strict = discover_rules(dataset.dirty, support=0.10, confidence=0.97, max_lhs=1)
    print(f"\nAt support 10% / confidence 97%: {len(strict)} rules")

    rate = fd_violation_rate(dataset.dirty, ["relationship"], "marital_status")
    print(f"FD violation rate of relationship -> marital_status (dirty): {rate:.3f}")

    engine = GDREngine(
        dataset.fresh_dirty(),
        dataset.rules,
        GroundTruthOracle(dataset.clean),
        config=GDRConfig.gdr(seed=args.seed),
        clean_db=dataset.clean,
    )
    budget = max(1, engine.initial_dirty // 3)
    result = engine.run(feedback_limit=budget)

    print(f"\nGDR with a budget of {budget} verifications:")
    print(f"  feedback={result.feedback_used} learner decisions={result.learner_decisions}")
    print(f"  improvement: {result.improvement:.1f}%")
    print(f"  {result.report.describe()}")


if __name__ == "__main__":
    main()
