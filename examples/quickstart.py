"""Quickstart: repair the paper's Figure 1 example with GDR.

Builds the Customer relation from the paper's running example, declares
the CFD rules of Figure 1(b) in textual notation, and runs the full
guided-repair loop with a simulated user answering from the ground
truth. Prints the instance before/after and the effort statistics.

Run::

    python examples/quickstart.py
"""

from __future__ import annotations

import copy

from repro import (
    Database,
    GDRConfig,
    GDREngine,
    GroundTruthOracle,
    RuleSet,
    Schema,
    parse_rules,
)

SCHEMA = Schema("customer", ["name", "src", "street", "city", "state", "zip"])

CLEAN_ROWS = [
    ["Jim", "H1", "Redwood Dr", "Michigan City", "IN", "46360"],
    ["Tom", "H2", "Redwood Dr", "Michigan City", "IN", "46360"],
    ["Ann", "H2", "Main St", "Michigan City", "IN", "46360"],
    ["Sue", "H2", "Oak Ave", "Michigan City", "IN", "46360"],
    ["Joe", "H3", "Sherden RD", "Fort Wayne", "IN", "46825"],
    ["Max", "H3", "Sherden RD", "Fort Wayne", "IN", "46825"],
    ["Pat", "H4", "Bell Ave", "New Haven", "IN", "46774"],
    ["Ken", "H4", "Bell Ave", "New Haven", "IN", "46774"],
]

# Figure 1(b), in the textual notation accepted by repro.parse_rules
RULES_TEXT = """
phi1: (zip -> city, state, {46360 || 'Michigan City', IN})
phi2: (zip -> city, state, {46774 || 'New Haven', IN})
phi3: (zip -> city, state, {46825 || 'Fort Wayne', IN})
phi4: (zip -> city, state, {46391 || 'Westville', IN})
phi5: (street, city -> zip, {-, - || -})
"""


def make_dirty_rows() -> list[list[str]]:
    """Plant the four errors discussed in the paper's introduction."""
    rows = copy.deepcopy(CLEAN_ROWS)
    rows[1][3] = "Westville"  # wrong city for zip 46360
    rows[2][3] = "Westvile"  # misspelled city
    rows[4][5] = "46391"  # wrong zip (t5 of the paper)
    rows[6][3] = "FT Wayne"  # recurrent data-entry abbreviation
    return rows


def print_instance(title: str, db: Database) -> None:
    print(f"\n{title}")
    print("-" * 72)
    for row in db.rows():
        print(
            f"  t{row.tid}: {row['name']:<4} {row['src']:<3} "
            f"{row['street']:<11} {row['city']:<14} {row['state']:<3} {row['zip']}"
        )


def main() -> None:
    clean = Database(SCHEMA, CLEAN_ROWS)
    dirty = Database(SCHEMA, make_dirty_rows())
    rules = RuleSet(parse_rules(RULES_TEXT), schema=SCHEMA)

    print(f"Rules: {rules!r}")
    print_instance("Dirty instance (as in Figure 1)", dirty)

    oracle = GroundTruthOracle(clean)
    engine = GDREngine(
        dirty,
        rules,
        oracle,
        config=GDRConfig.gdr(min_examples=4, seed=0),
        clean_db=clean,
    )
    print(f"\nInitially dirty tuples: {engine.initial_dirty}")
    print(f"Initial candidate updates: {len(engine.state.updates())}")

    result = engine.run()

    print_instance("Repaired instance", dirty)
    print("\nRepair summary")
    print("-" * 72)
    print(f"  user feedback given .... {result.feedback_used}")
    print(f"  learner decisions ...... {result.learner_decisions}")
    print(f"  quality loss ........... {result.initial_loss:.4f} -> {result.final_loss:.4f}")
    print(f"  quality improvement .... {result.improvement:.1f}%")
    print(f"  {result.report.describe()}")
    print(f"  matches ground truth ... {dirty.equals_data(clean)}")


if __name__ == "__main__":
    main()
