"""Dataset 1 walkthrough: guided repair of emergency-room visit records.

Generates the hospital dataset (the paper's Dataset 1 analogue, with
source-correlated recurrent errors), then compares three ways to clean
it:

1. the fully automatic heuristic (no user),
2. GDR with a limited feedback budget (20% of the dirty tuples),
3. GDR with an unlimited budget.

Prints quality improvement, precision/recall and effort for each.

Run::

    python examples/hospital_cleaning.py [--n 1000] [--seed 0]
"""

from __future__ import annotations

import argparse

from repro import GDRConfig, GDREngine, GroundTruthOracle, batch_repair, evaluate_repair
from repro.core.quality import QualityEvaluator, quality_improvement
from repro.datasets import load_dataset
from repro.experiments import initial_dirty_count


def run_heuristic(dataset) -> None:
    db = dataset.fresh_dirty()
    evaluator = QualityEvaluator(dataset.clean, dataset.rules)
    initial_loss = evaluator.loss_of(db)
    result = batch_repair(db, dataset.rules)
    final_loss = evaluator.loss_of(db)
    report = evaluate_repair(dataset.dirty, db, dataset.clean)
    print("\nAutomatic heuristic (no user)")
    print(f"  passes={result.passes} cells changed={len(result.changed_cells)}")
    print(f"  improvement: {quality_improvement(initial_loss, final_loss):.1f}%")
    print(f"  {report.describe()}")


def run_gdr(dataset, budget: int | None, label: str, seed: int) -> None:
    db = dataset.fresh_dirty()
    engine = GDREngine(
        db,
        dataset.rules,
        GroundTruthOracle(dataset.clean),
        config=GDRConfig.gdr(seed=seed),
        clean_db=dataset.clean,
    )
    result = engine.run(feedback_limit=budget)
    print(f"\n{label}")
    print(f"  feedback={result.feedback_used} learner decisions={result.learner_decisions}")
    print(f"  improvement: {result.improvement:.1f}%")
    print(f"  {result.report.describe()}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=1000)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    dataset = load_dataset("hospital", n=args.n, seed=args.seed)
    base = initial_dirty_count(dataset)
    print(f"Dataset: {dataset.describe()}")
    print(f"Tuples flagged dirty by the rules (incl. partners): {base}")

    # show a recurrent source mistake, the correlation the learner exploits
    examples = [
        (tid, attr)
        for tid, attr in dataset.corruption.corrupted_cells
        if attr == "city"
    ][:3]
    for tid, attr in examples:
        row = dataset.dirty.row(tid)
        truth = dataset.clean.value(tid, attr)
        print(
            f"  e.g. tuple {tid} from {row['hospital']}: city={row[attr]!r} "
            f"(truth: {truth!r})"
        )

    run_heuristic(dataset)
    run_gdr(dataset, budget=max(1, base // 5), label="GDR with 20% effort", seed=args.seed)
    run_gdr(dataset, budget=None, label="GDR with unlimited effort", seed=args.seed)


if __name__ == "__main__":
    main()
