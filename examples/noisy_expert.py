"""Robustness study: what if the domain expert is sometimes wrong?

The paper assumes a perfect oracle. This example wraps the ground-truth
oracle in :class:`repro.NoisyOracle` and measures how repair quality
degrades as the expert's error rate grows — an extension experiment
enabled by the framework's pluggable user model.

Also shows how to plug in a custom similarity function (token Jaccard
instead of edit distance) for the update evaluation of Eq. 7.

Run::

    python examples/noisy_expert.py [--n 600] [--seed 0]
"""

from __future__ import annotations

import argparse

from repro import GDRConfig, GDREngine, GroundTruthOracle, NoisyOracle
from repro.datasets import load_dataset
from repro.repair import UpdateGenerator, token_jaccard


def run_with_noise(dataset, error_rate: float, seed: int):
    oracle = NoisyOracle(
        GroundTruthOracle(dataset.clean), error_rate=error_rate, seed=seed
    )
    engine = GDREngine(
        dataset.fresh_dirty(),
        dataset.rules,
        oracle,
        config=GDRConfig.gdr(seed=seed),
        clean_db=dataset.clean,
    )
    result = engine.run(feedback_limit=engine.initial_dirty)
    return result, oracle


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=600)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    dataset = load_dataset("hospital", n=args.n, seed=args.seed)
    print(f"Dataset: {dataset.describe()}\n")
    print(f"{'noise':>6} | {'improvement':>11} | {'precision':>9} | {'recall':>7} | corrupted answers")
    print("-" * 64)
    for rate in (0.0, 0.05, 0.1, 0.2):
        result, oracle = run_with_noise(dataset, rate, args.seed)
        print(
            f"{rate:6.2f} | {result.improvement:10.1f}% | "
            f"{result.report.precision:9.3f} | {result.report.recall:7.3f} | {oracle.corrupted}"
        )

    # custom similarity: token Jaccard for multi-word address fields
    db = dataset.fresh_dirty()
    from repro.constraints import ViolationDetector
    from repro.repair import RepairState

    detector = ViolationDetector(db, dataset.rules)
    generator = UpdateGenerator(
        db, dataset.rules, detector, RepairState(), sim=token_jaccard
    )
    produced = generator.generate_all()
    print(f"\nWith token-Jaccard similarity, {len(produced)} updates are suggested;")
    scored = sorted(produced, key=lambda u: -u.score)[:3]
    for update in scored:
        print(f"  {update.describe()}")


if __name__ == "__main__":
    main()
